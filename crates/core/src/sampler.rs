//! eIM RRR-set sampling kernels (§3.2–§3.4, Algorithm 2).
//!
//! One warp per block performs a probabilistic BFS (IC) or threshold walk
//! (LT). eIM's distinguishing choices, all modelled here:
//!
//! * the BFS queue `Q` lives in a pre-allocated **global-memory pool**, so
//!   no dynamic allocation ever happens mid-traversal and the finished
//!   queue doubles as the RRR set (it is copied straight into `R`);
//! * set indices are assigned to blocks round-robin through a shared
//!   counter, balancing unpredictable traversal lengths;
//! * each set is sorted ascending before the copy so selection can binary
//!   search (§3.2);
//! * with source elimination on (§3.4), the source is dropped during the
//!   copy and empty results are discarded entirely.
//!
//! Blocks do the traversal work for real and charge warp-level costs; the
//! resulting sets are bit-identical across runs because every set index
//! owns a deterministic RNG stream.
//!
//! Host-side, the batch mirrors the device layout: every block appends its
//! finished sets into one flat offsets + data arena (no per-set `Vec`), the
//! traversal scratch (`M` bitmap and queue pool) lives in a per-worker
//! arena reused across blocks ([`eim_gpusim::Device::launch_with_scratch`]),
//! and the merged [`FlatSampleSets`] is ordered by sample index, so its
//! bytes are independent of grid layout and thread count.

use eim_diffusion::{sample_rng, DiffusionModel};
use eim_gpusim::{Device, LaunchStats, Op, SimFault, WARP_SIZE};
use eim_graph::VertexId;
use rand::Rng;

use crate::device_graph::DeviceGraph;

/// Outcome counters of one sampling batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerCounters {
    /// Sets whose traversal visited only the source (pre-elimination) —
    /// the x-axis of Figure 5.
    pub singletons: usize,
    /// Samples discarded by source elimination.
    pub discarded: usize,
    /// Samples drawn in total.
    pub sampled: usize,
}

/// One batch's RRR sets in flat CSR-style storage: a shared element arena
/// plus per-sample offsets, with a kept/discarded flag per sample. Sample
/// `i` of the batch occupies `data[offsets[i]..offsets[i + 1]]`; discarded
/// samples (source elimination, §3.4) own an empty range. The layout is
/// canonical — built in sample-index order — so equality is byte equality
/// regardless of the grid that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatSampleSets {
    /// `len + 1` element offsets into `data`.
    offsets: Vec<usize>,
    /// All kept sets' elements, concatenated in sample order.
    data: Vec<VertexId>,
    /// Whether sample `i` was kept (false = discarded by elimination).
    kept: Vec<bool>,
}

impl FlatSampleSets {
    /// Number of samples in the batch (kept and discarded).
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// Whether the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// Sample `i`'s sorted RRR set, or `None` if elimination discarded it.
    pub fn get(&self, i: usize) -> Option<&[VertexId]> {
        self.kept[i].then(|| &self.data[self.offsets[i]..self.offsets[i + 1]])
    }

    /// Iterates samples in index order ([`FlatSampleSets::get`] per slot).
    pub fn iter(&self) -> impl Iterator<Item = Option<&[VertexId]>> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Total elements across all kept sets.
    pub fn total_elements(&self) -> usize {
        self.data.len()
    }
}

/// Result of one batch launch.
pub struct SampleBatch {
    /// The batch's RRR sets, indexed by offset within the batch.
    pub sets: FlatSampleSets,
    /// Launch timing.
    pub stats: LaunchStats,
    /// Outcome counters.
    pub counters: SamplerCounters,
}

/// One simulated block's share of the batch, in local (round-robin) order:
/// local position `p` holds global slot `block_id + p * num_blocks`.
struct BlockOutput {
    offsets: Vec<usize>,
    data: Vec<VertexId>,
    kept: Vec<bool>,
    counters: SamplerCounters,
}

/// Host-side traversal scratch, one per rayon worker chunk: the visited
/// bitmap `M` (all-false between sets — Algorithm 2 line 27 restores it)
/// and the global-memory queue pool. Reused across every block the worker
/// executes; the simulated per-block memset of `M` is still charged per
/// block.
struct SamplerScratch {
    visited: Vec<bool>,
    queue: Vec<VertexId>,
}

/// Samples RRR sets for indices `start..start + count` of run `seed` on
/// `device`, under `model`. Grid size is `4x` the SM count (persistent
/// blocks, one warp each), with indices interleaved across blocks — the
/// paper's round-robin assignment.
///
/// Fails only when the device's fault plan schedules a transient launch
/// fault; sample content is untouched by retries (every set index owns a
/// deterministic RNG stream), so callers can simply re-invoke.
pub fn sample_batch<G: DeviceGraph>(
    device: &Device,
    graph: &G,
    model: DiffusionModel,
    seed: u64,
    start: u64,
    count: usize,
    source_elim: bool,
) -> Result<SampleBatch, SimFault> {
    let n = graph.n();
    let blocks = (device.spec().num_sms * 4).min(count.max(1));
    device.check_kernel_fault("eim_sample")?;
    let result = device.launch_with_scratch(
        "eim_sample",
        blocks,
        || SamplerScratch {
            visited: vec![false; n],
            queue: Vec::new(),
        },
        |ctx, scratch| {
            let b = ctx.block_id();
            // Each block zeroes its own M (Algorithm 2): the simulated cost
            // is per block even though the host bitmap is a worker arena.
            ctx.charge_warp_sweep(n.div_ceil(32), ctx.spec().costs.global_access); // memset M
            let local = count.saturating_sub(b).div_ceil(blocks);
            let mut out = BlockOutput {
                offsets: Vec::with_capacity(local + 1),
                data: Vec::new(),
                kept: Vec::with_capacity(local),
                counters: SamplerCounters::default(),
            };
            out.offsets.push(0);
            let mut j = b;
            while j < count {
                let idx = start + j as u64;
                let source = sample_one(
                    ctx,
                    graph,
                    model,
                    seed,
                    idx,
                    &mut scratch.visited,
                    &mut scratch.queue,
                );
                let set = &scratch.queue;
                out.counters.sampled += 1;
                if set.len() == 1 {
                    out.counters.singletons += 1;
                }
                // Copy Q into the block's flat output, applying source
                // elimination during the copy (§3.4): drop the source, and
                // discard samples that reduce to empty.
                let kept = if source_elim {
                    if set.len() <= 1 {
                        debug_assert!(set.is_empty() || set[0] == source);
                        out.counters.discarded += 1;
                        false
                    } else {
                        let before = out.data.len();
                        for &v in set {
                            if v != source {
                                out.data.push(v);
                            }
                        }
                        debug_assert_eq!(
                            out.data.len() - before,
                            set.len() - 1,
                            "source must appear exactly once"
                        );
                        true
                    }
                } else {
                    out.data.extend_from_slice(set);
                    true
                };
                if kept {
                    let len = out.data.len() - out.offsets.last().copied().unwrap_or(0);
                    charge_copy_out(ctx, len);
                }
                out.offsets.push(out.data.len());
                out.kept.push(kept);
                j += blocks;
            }
            out
        },
    );

    // Merge in sample-index order. The round-robin deal is invertible —
    // global slot j lives in block j % blocks at local position j / blocks —
    // so one sizing pass plus one copy pass produces the canonical layout
    // with no per-set allocation.
    let mut counters = SamplerCounters::default();
    let mut lens = vec![0usize; count];
    let mut kept = vec![false; count];
    for (b, block) in result.outputs.iter().enumerate() {
        counters.singletons += block.counters.singletons;
        counters.discarded += block.counters.discarded;
        counters.sampled += block.counters.sampled;
        for p in 0..block.kept.len() {
            let slot = b + p * blocks;
            lens[slot] = block.offsets[p + 1] - block.offsets[p];
            kept[slot] = block.kept[p];
        }
    }
    let mut offsets = Vec::with_capacity(count + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &l in &lens {
        acc += l;
        offsets.push(acc);
    }
    let mut data = vec![0 as VertexId; acc];
    for (b, block) in result.outputs.iter().enumerate() {
        for p in 0..block.kept.len() {
            let slot = b + p * blocks;
            let src = &block.data[block.offsets[p]..block.offsets[p + 1]];
            data[offsets[slot]..offsets[slot] + src.len()].copy_from_slice(src);
        }
    }
    Ok(SampleBatch {
        sets: FlatSampleSets {
            offsets,
            data,
            kept,
        },
        stats: result.stats,
        counters,
    })
}

/// Traverses one RRR set into `queue`, leaving it sorted ascending, and
/// returns the sample's source vertex. `visited` must be all-false on entry
/// and is restored to all-false before returning.
fn sample_one<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    model: DiffusionModel,
    seed: u64,
    idx: u64,
    visited: &mut [bool],
    queue: &mut Vec<VertexId>,
) -> VertexId {
    let mut rng = sample_rng(seed, idx);
    let n = graph.n();
    let source: VertexId = rng.gen_range(0..n as VertexId);
    // Thread 0 seeds the queue (Algorithm 2 lines 5–10).
    ctx.charge(Op::Rng, 1);
    ctx.charge(Op::GlobalAccess, 1);
    queue.clear();
    queue.push(source);
    visited[source as usize] = true;
    match model {
        DiffusionModel::IndependentCascade => ic_traverse(ctx, graph, &mut rng, visited, queue),
        DiffusionModel::LinearThreshold => lt_traverse(ctx, graph, &mut rng, visited, queue),
    }
    // Sort ascending (warp bitonic sort in shared memory) so selection can
    // binary-search; the cost is q log^2 q comparator stages over 32 lanes.
    let q = queue.len();
    if q > 1 {
        let lg = (usize::BITS - (q - 1).leading_zeros()) as u64;
        ctx.charge_cycles(
            (q as u64 * lg * lg).div_ceil(WARP_SIZE as u64) * ctx.spec().costs.shared_access,
        );
        queue.sort_unstable();
    }
    // Reset M for the vertices we touched (Algorithm 2 line 27).
    for &v in queue.iter() {
        visited[v as usize] = false;
    }
    ctx.charge(Op::GlobalAccess, q as u64);
    source
}

/// Warp-wide probabilistic BFS (IC): every dequeued vertex's in-neighbor
/// list is swept 32 lanes at a time; each lane draws a uniform and activates
/// its neighbor with probability `p_vu` (Algorithm 2 lines 11–20).
fn ic_traverse<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    rng: &mut impl Rng,
    visited: &mut [bool],
    queue: &mut Vec<VertexId>,
) {
    let costs = *ctx.spec();
    let wave_cost = costs.costs.global_access + costs.costs.rng + costs.costs.alu;
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        ctx.charge(Op::GlobalAccess, 1); // Q.front() + head bump
        let d = graph.in_degree(u);
        ctx.charge_warp_sweep(d, wave_cost);
        for i in 0..d {
            let v = graph.in_neighbor(u, i);
            let p = graph.in_weight(u, i);
            let r: f32 = rng.gen();
            if r <= p && !visited[v as usize] {
                // Mark in M, then atomically enqueue (order matters; §3.2).
                visited[v as usize] = true;
                queue.push(v);
                ctx.charge(Op::AtomicGlobal, 2); // enqueue slot + tail bump
            }
        }
    }
}

/// LT reverse walk: each step draws a threshold and selects at most one
/// in-neighbor via the warp shuffle prefix scan (§3.3), costing
/// `O(log d)` shuffle rounds per 32-lane wave instead of `O(d)` serialized
/// atomics.
fn lt_traverse<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    rng: &mut impl Rng,
    visited: &mut [bool],
    queue: &mut Vec<VertexId>,
) {
    let mut u = *queue.last().expect("queue seeded with source");
    loop {
        let d = graph.in_degree(u);
        if d == 0 {
            break;
        }
        ctx.charge(Op::Rng, 1); // tau, shared across the warp
        let tau: f32 = rng.gen();
        // Prefix-scan the weights wave by wave until the threshold falls.
        let waves = d.div_ceil(WARP_SIZE);
        let mut acc = 0.0f32;
        let mut chosen: Option<VertexId> = None;
        'waves: for w in 0..waves {
            ctx.charge(Op::GlobalAccess, 1); // coalesced weight load
            ctx.charge_shuffle_scan();
            let lo = w * WARP_SIZE;
            let hi = (lo + WARP_SIZE).min(d);
            for i in lo..hi {
                let p = graph.in_weight(u, i);
                let inclusive = acc + p;
                // First neighbor whose inclusive sum crosses tau while the
                // exclusive sum is still below it (§3.3).
                if inclusive >= tau && acc < tau {
                    chosen = Some(graph.in_neighbor(u, i));
                    break 'waves;
                }
                acc = inclusive;
            }
        }
        match chosen {
            Some(v) if !visited[v as usize] => {
                visited[v as usize] = true;
                queue.push(v);
                ctx.charge(Op::AtomicGlobal, 2);
                u = v;
            }
            _ => break,
        }
    }
}

/// Charges the Q -> R copy-out (Algorithm 2 lines 21–28): the offset bump,
/// the coalesced element writes, and the per-vertex count updates.
fn charge_copy_out(ctx: &mut eim_gpusim::BlockCtx, q: usize) {
    ctx.charge(Op::AtomicGlobal, 1); // atomicAdd(offset, |Q|)
    ctx.charge(Op::GlobalAccess, 1); // O[count + 1] write
    ctx.charge_warp_sweep(q, ctx.spec().costs.global_access); // R writes
    ctx.charge(Op::AtomicGlobal, q as u64); // C[v] updates (scattered)
    ctx.charge(Op::AtomicGlobal, 1); // count bump
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device_graph::PlainDeviceGraph;
    use eim_gpusim::DeviceSpec;
    use eim_graph::{generators, WeightModel};

    fn device() -> Device {
        Device::new(DeviceSpec::test_small())
    }

    #[test]
    fn batch_produces_sorted_unique_sets_containing_structure() {
        let g = generators::rmat(
            200,
            1_200,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            5,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch = sample_batch(
            &d,
            &dg,
            DiffusionModel::IndependentCascade,
            42,
            0,
            100,
            false,
        )
        .unwrap();
        assert_eq!(batch.sets.len(), 100);
        assert_eq!(batch.counters.sampled, 100);
        assert_eq!(batch.counters.discarded, 0);
        for set in batch.sets.iter() {
            let s = set.expect("no discards without elimination");
            assert!(!s.is_empty());
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            assert!(s.iter().all(|&v| (v as usize) < 200));
        }
        assert!(batch.stats.elapsed_us > 0.0);
    }

    #[test]
    fn deterministic_across_launches_and_grid_sizes() {
        let g = generators::rmat(
            150,
            900,
            generators::RmatParams::MILD,
            WeightModel::WeightedCascade,
            8,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d1 = Device::new(DeviceSpec::test_small());
        let mut big = DeviceSpec::test_small();
        big.num_sms = 13; // different grid -> different block assignment
        let d2 = Device::new(big);
        let b1 = sample_batch(
            &d1,
            &dg,
            DiffusionModel::IndependentCascade,
            3,
            10,
            64,
            false,
        )
        .unwrap();
        let b2 = sample_batch(
            &d2,
            &dg,
            DiffusionModel::IndependentCascade,
            3,
            10,
            64,
            false,
        )
        .unwrap();
        assert_eq!(b1.sets, b2.sets, "content independent of grid layout");
        let b3 = sample_batch(
            &d1,
            &dg,
            DiffusionModel::IndependentCascade,
            3,
            10,
            64,
            false,
        )
        .unwrap();
        assert_eq!(b1.sets, b3.sets);
        assert_eq!(b1.stats, b3.stats, "timing deterministic per device");
    }

    #[test]
    fn source_elimination_discards_singletons() {
        // In-star: every leaf's reverse BFS is a singleton.
        let g = generators::star_in(64, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 1, 0, 200, true).unwrap();
        assert_eq!(batch.counters.sampled, 200);
        assert!(batch.counters.singletons > 150, "mostly singletons");
        assert_eq!(batch.counters.discarded, batch.counters.singletons);
        for (i, set) in batch.sets.iter().enumerate() {
            if let Some(s) = set {
                // Hub sets: source was the hub, members are leaves only.
                assert!(!s.is_empty(), "set {i} empty but kept");
            }
        }
    }

    #[test]
    fn elimination_removes_exactly_the_source() {
        let g = generators::path(20, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let with =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 9, 0, 50, false).unwrap();
        let without =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 9, 0, 50, true).unwrap();
        for (a, b) in with.sets.iter().zip(without.sets.iter()) {
            let a = a.unwrap();
            match b {
                Some(b) => {
                    assert_eq!(b.len(), a.len() - 1);
                    assert!(b.iter().all(|v| a.contains(v)));
                }
                None => assert_eq!(a.len(), 1),
            }
        }
    }

    #[test]
    fn ic_on_deterministic_path_reaches_all_ancestors() {
        let g = generators::path(30, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 2, 0, 40, false).unwrap();
        for set in batch.sets.iter().map(|s| s.unwrap()) {
            // A set rooted at source s on the path must be exactly {0..=s}.
            let src = *set.last().unwrap();
            assert_eq!(set.len() as u32, src + 1);
            assert_eq!(set[0], 0);
        }
    }

    #[test]
    fn lt_sets_are_paths() {
        let g = generators::rmat(
            100,
            600,
            generators::RmatParams::MILD,
            WeightModel::WeightedCascade,
            4,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::LinearThreshold, 6, 0, 80, false).unwrap();
        for set in batch.sets.iter().map(|s| s.unwrap()) {
            assert!(!set.is_empty());
            assert!(set.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(batch.counters.sampled == 80);
    }

    #[test]
    fn lt_walk_terminates_on_cycle() {
        let g = generators::cycle(8, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::LinearThreshold, 7, 0, 10, false).unwrap();
        for set in batch.sets.iter().map(|s| s.unwrap()) {
            assert_eq!(set.len(), 8, "full lap then stop");
        }
    }

    #[test]
    fn load_imbalance_is_visible_in_stats() {
        // Heavy-tailed graph: some traversals are long -> max block cycles
        // well above the mean.
        let g = generators::barabasi_albert(500, 4, WeightModel::WeightedCascade, 3);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch = sample_batch(
            &d,
            &dg,
            DiffusionModel::IndependentCascade,
            11,
            0,
            64,
            false,
        )
        .unwrap();
        let mean = batch.stats.total_cycles / batch.stats.num_blocks.max(1) as u64;
        assert!(batch.stats.max_block_cycles >= mean);
    }
}
