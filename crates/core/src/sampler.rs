//! eIM RRR-set sampling kernels (§3.2–§3.4, Algorithm 2).
//!
//! One warp per block performs a probabilistic BFS (IC) or threshold walk
//! (LT). eIM's distinguishing choices, all modelled here:
//!
//! * the BFS queue `Q` lives in a pre-allocated **global-memory pool**, so
//!   no dynamic allocation ever happens mid-traversal and the finished
//!   queue doubles as the RRR set (it is copied straight into `R`);
//! * set indices are assigned to blocks round-robin through a shared
//!   counter, balancing unpredictable traversal lengths;
//! * each set is sorted ascending before the copy so selection can binary
//!   search (§3.2);
//! * with source elimination on (§3.4), the source is dropped during the
//!   copy and empty results are discarded entirely.
//!
//! Blocks do the traversal work for real and charge warp-level costs; the
//! resulting sets are bit-identical across runs because every set index
//! owns a deterministic RNG stream.

use eim_diffusion::{sample_rng, DiffusionModel};
use eim_gpusim::{Device, LaunchStats, Op, SimFault, WARP_SIZE};
use eim_graph::VertexId;
use eim_imm::apply_source_elimination;
use rand::Rng;

use crate::device_graph::DeviceGraph;

/// Outcome counters of one sampling batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerCounters {
    /// Sets whose traversal visited only the source (pre-elimination) —
    /// the x-axis of Figure 5.
    pub singletons: usize,
    /// Samples discarded by source elimination.
    pub discarded: usize,
    /// Samples drawn in total.
    pub sampled: usize,
}

/// Result of one batch launch.
pub struct SampleBatch {
    /// Per sample index (offset within the batch): the sorted RRR set, or
    /// `None` if source elimination discarded it.
    pub sets: Vec<Option<Vec<VertexId>>>,
    /// Launch timing.
    pub stats: LaunchStats,
    /// Outcome counters.
    pub counters: SamplerCounters,
}

struct BlockOutput {
    sets: Vec<(u64, Option<Vec<VertexId>>)>,
    counters: SamplerCounters,
}

/// Samples RRR sets for indices `start..start + count` of run `seed` on
/// `device`, under `model`. Grid size is `4x` the SM count (persistent
/// blocks, one warp each), with indices interleaved across blocks — the
/// paper's round-robin assignment.
///
/// Fails only when the device's fault plan schedules a transient launch
/// fault; sample content is untouched by retries (every set index owns a
/// deterministic RNG stream), so callers can simply re-invoke.
pub fn sample_batch<G: DeviceGraph>(
    device: &Device,
    graph: &G,
    model: DiffusionModel,
    seed: u64,
    start: u64,
    count: usize,
    source_elim: bool,
) -> Result<SampleBatch, SimFault> {
    let n = graph.n();
    let blocks = (device.spec().num_sms * 4).min(count.max(1));
    let result = device.checked_launch("eim_sample", blocks, |ctx| {
        let b = ctx.block_id();
        // Per-block scratch, reused across this block's sets: the visited
        // bitmap M (zeroed once per launch; reset per set by walking Q —
        // Algorithm 2 line 27) and the global-memory queue.
        let mut visited = vec![false; n];
        ctx.charge_warp_sweep(n.div_ceil(32), ctx.spec().costs.global_access); // memset M
        let mut queue: Vec<VertexId> = Vec::new();
        let mut out = BlockOutput {
            sets: Vec::new(),
            counters: SamplerCounters::default(),
        };
        let mut j = b;
        while j < count {
            let idx = start + j as u64;
            let set = sample_one(ctx, graph, model, seed, idx, &mut visited, &mut queue);
            out.counters.sampled += 1;
            if set.len() == 1 {
                out.counters.singletons += 1;
            }
            let kept = if source_elim {
                let source = set_source(seed, idx, n);
                let reduced = apply_source_elimination(&set, source);
                if reduced.is_none() {
                    out.counters.discarded += 1;
                }
                reduced
            } else {
                Some(set)
            };
            if let Some(s) = &kept {
                charge_copy_out(ctx, s.len());
            }
            out.sets.push((idx, kept));
            j += blocks;
        }
        out
    })?;
    let mut sets: Vec<Option<Vec<VertexId>>> = (0..count).map(|_| None).collect();
    let mut counters = SamplerCounters::default();
    for block in result.outputs {
        counters.singletons += block.counters.singletons;
        counters.discarded += block.counters.discarded;
        counters.sampled += block.counters.sampled;
        for (idx, set) in block.sets {
            sets[(idx - start) as usize] = set;
        }
    }
    Ok(SampleBatch {
        sets,
        stats: result.stats,
        counters,
    })
}

/// The source vertex for sample `idx` — the first draw of its RNG stream.
/// Exposed so elimination can recover it without threading extra state.
fn set_source(seed: u64, idx: u64, n: usize) -> VertexId {
    let mut rng = sample_rng(seed, idx);
    rng.gen_range(0..n as VertexId)
}

/// Traverses one RRR set, returning it sorted ascending. `visited` must be
/// all-false on entry and is restored to all-false before returning.
fn sample_one<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    model: DiffusionModel,
    seed: u64,
    idx: u64,
    visited: &mut [bool],
    queue: &mut Vec<VertexId>,
) -> Vec<VertexId> {
    let mut rng = sample_rng(seed, idx);
    let n = graph.n();
    let source: VertexId = rng.gen_range(0..n as VertexId);
    // Thread 0 seeds the queue (Algorithm 2 lines 5–10).
    ctx.charge(Op::Rng, 1);
    ctx.charge(Op::GlobalAccess, 1);
    queue.clear();
    queue.push(source);
    visited[source as usize] = true;
    match model {
        DiffusionModel::IndependentCascade => ic_traverse(ctx, graph, &mut rng, visited, queue),
        DiffusionModel::LinearThreshold => lt_traverse(ctx, graph, &mut rng, visited, queue),
    }
    // Sort ascending (warp bitonic sort in shared memory) so selection can
    // binary-search; the cost is q log^2 q comparator stages over 32 lanes.
    let q = queue.len();
    if q > 1 {
        let lg = (usize::BITS - (q - 1).leading_zeros()) as u64;
        ctx.charge_cycles(
            (q as u64 * lg * lg).div_ceil(WARP_SIZE as u64) * ctx.spec().costs.shared_access,
        );
        queue.sort_unstable();
    }
    // Reset M for the vertices we touched (Algorithm 2 line 27).
    for &v in queue.iter() {
        visited[v as usize] = false;
    }
    ctx.charge(Op::GlobalAccess, q as u64);
    std::mem::take(queue)
}

/// Warp-wide probabilistic BFS (IC): every dequeued vertex's in-neighbor
/// list is swept 32 lanes at a time; each lane draws a uniform and activates
/// its neighbor with probability `p_vu` (Algorithm 2 lines 11–20).
fn ic_traverse<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    rng: &mut impl Rng,
    visited: &mut [bool],
    queue: &mut Vec<VertexId>,
) {
    let costs = *ctx.spec();
    let wave_cost = costs.costs.global_access + costs.costs.rng + costs.costs.alu;
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        ctx.charge(Op::GlobalAccess, 1); // Q.front() + head bump
        let d = graph.in_degree(u);
        ctx.charge_warp_sweep(d, wave_cost);
        for i in 0..d {
            let v = graph.in_neighbor(u, i);
            let p = graph.in_weight(u, i);
            let r: f32 = rng.gen();
            if r <= p && !visited[v as usize] {
                // Mark in M, then atomically enqueue (order matters; §3.2).
                visited[v as usize] = true;
                queue.push(v);
                ctx.charge(Op::AtomicGlobal, 2); // enqueue slot + tail bump
            }
        }
    }
}

/// LT reverse walk: each step draws a threshold and selects at most one
/// in-neighbor via the warp shuffle prefix scan (§3.3), costing
/// `O(log d)` shuffle rounds per 32-lane wave instead of `O(d)` serialized
/// atomics.
fn lt_traverse<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    rng: &mut impl Rng,
    visited: &mut [bool],
    queue: &mut Vec<VertexId>,
) {
    let mut u = *queue.last().expect("queue seeded with source");
    loop {
        let d = graph.in_degree(u);
        if d == 0 {
            break;
        }
        ctx.charge(Op::Rng, 1); // tau, shared across the warp
        let tau: f32 = rng.gen();
        // Prefix-scan the weights wave by wave until the threshold falls.
        let waves = d.div_ceil(WARP_SIZE);
        let mut acc = 0.0f32;
        let mut chosen: Option<VertexId> = None;
        'waves: for w in 0..waves {
            ctx.charge(Op::GlobalAccess, 1); // coalesced weight load
            ctx.charge_shuffle_scan();
            let lo = w * WARP_SIZE;
            let hi = (lo + WARP_SIZE).min(d);
            for i in lo..hi {
                let p = graph.in_weight(u, i);
                let inclusive = acc + p;
                // First neighbor whose inclusive sum crosses tau while the
                // exclusive sum is still below it (§3.3).
                if inclusive >= tau && acc < tau {
                    chosen = Some(graph.in_neighbor(u, i));
                    break 'waves;
                }
                acc = inclusive;
            }
        }
        match chosen {
            Some(v) if !visited[v as usize] => {
                visited[v as usize] = true;
                queue.push(v);
                ctx.charge(Op::AtomicGlobal, 2);
                u = v;
            }
            _ => break,
        }
    }
}

/// Charges the Q -> R copy-out (Algorithm 2 lines 21–28): the offset bump,
/// the coalesced element writes, and the per-vertex count updates.
fn charge_copy_out(ctx: &mut eim_gpusim::BlockCtx, q: usize) {
    ctx.charge(Op::AtomicGlobal, 1); // atomicAdd(offset, |Q|)
    ctx.charge(Op::GlobalAccess, 1); // O[count + 1] write
    ctx.charge_warp_sweep(q, ctx.spec().costs.global_access); // R writes
    ctx.charge(Op::AtomicGlobal, q as u64); // C[v] updates (scattered)
    ctx.charge(Op::AtomicGlobal, 1); // count bump
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device_graph::PlainDeviceGraph;
    use eim_gpusim::DeviceSpec;
    use eim_graph::{generators, WeightModel};

    fn device() -> Device {
        Device::new(DeviceSpec::test_small())
    }

    #[test]
    fn batch_produces_sorted_unique_sets_containing_structure() {
        let g = generators::rmat(
            200,
            1_200,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            5,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch = sample_batch(
            &d,
            &dg,
            DiffusionModel::IndependentCascade,
            42,
            0,
            100,
            false,
        )
        .unwrap();
        assert_eq!(batch.sets.len(), 100);
        assert_eq!(batch.counters.sampled, 100);
        assert_eq!(batch.counters.discarded, 0);
        for set in batch.sets.iter() {
            let s = set.as_ref().expect("no discards without elimination");
            assert!(!s.is_empty());
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            assert!(s.iter().all(|&v| (v as usize) < 200));
        }
        assert!(batch.stats.elapsed_us > 0.0);
    }

    #[test]
    fn deterministic_across_launches_and_grid_sizes() {
        let g = generators::rmat(
            150,
            900,
            generators::RmatParams::MILD,
            WeightModel::WeightedCascade,
            8,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d1 = Device::new(DeviceSpec::test_small());
        let mut big = DeviceSpec::test_small();
        big.num_sms = 13; // different grid -> different block assignment
        let d2 = Device::new(big);
        let b1 = sample_batch(
            &d1,
            &dg,
            DiffusionModel::IndependentCascade,
            3,
            10,
            64,
            false,
        )
        .unwrap();
        let b2 = sample_batch(
            &d2,
            &dg,
            DiffusionModel::IndependentCascade,
            3,
            10,
            64,
            false,
        )
        .unwrap();
        assert_eq!(b1.sets, b2.sets, "content independent of grid layout");
        let b3 = sample_batch(
            &d1,
            &dg,
            DiffusionModel::IndependentCascade,
            3,
            10,
            64,
            false,
        )
        .unwrap();
        assert_eq!(b1.sets, b3.sets);
        assert_eq!(b1.stats, b3.stats, "timing deterministic per device");
    }

    #[test]
    fn source_elimination_discards_singletons() {
        // In-star: every leaf's reverse BFS is a singleton.
        let g = generators::star_in(64, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 1, 0, 200, true).unwrap();
        assert_eq!(batch.counters.sampled, 200);
        assert!(batch.counters.singletons > 150, "mostly singletons");
        assert_eq!(batch.counters.discarded, batch.counters.singletons);
        for (i, set) in batch.sets.iter().enumerate() {
            if let Some(s) = set {
                // Hub sets: source was the hub, members are leaves only.
                assert!(!s.is_empty(), "set {i} empty but kept");
            }
        }
    }

    #[test]
    fn elimination_removes_exactly_the_source() {
        let g = generators::path(20, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let with =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 9, 0, 50, false).unwrap();
        let without =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 9, 0, 50, true).unwrap();
        for (a, b) in with.sets.iter().zip(&without.sets) {
            let a = a.as_ref().unwrap();
            match b {
                Some(b) => {
                    assert_eq!(b.len(), a.len() - 1);
                    assert!(b.iter().all(|v| a.contains(v)));
                }
                None => assert_eq!(a.len(), 1),
            }
        }
    }

    #[test]
    fn ic_on_deterministic_path_reaches_all_ancestors() {
        let g = generators::path(30, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 2, 0, 40, false).unwrap();
        for set in batch.sets.iter().map(|s| s.as_ref().unwrap()) {
            // A set rooted at source s on the path must be exactly {0..=s}.
            let src = *set.last().unwrap();
            assert_eq!(set.len() as u32, src + 1);
            assert_eq!(set[0], 0);
        }
    }

    #[test]
    fn lt_sets_are_paths() {
        let g = generators::rmat(
            100,
            600,
            generators::RmatParams::MILD,
            WeightModel::WeightedCascade,
            4,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::LinearThreshold, 6, 0, 80, false).unwrap();
        for set in batch.sets.iter().map(|s| s.as_ref().unwrap()) {
            assert!(!set.is_empty());
            assert!(set.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(batch.counters.sampled == 80);
    }

    #[test]
    fn lt_walk_terminates_on_cycle() {
        let g = generators::cycle(8, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::LinearThreshold, 7, 0, 10, false).unwrap();
        for set in batch.sets.iter().map(|s| s.as_ref().unwrap()) {
            assert_eq!(set.len(), 8, "full lap then stop");
        }
    }

    #[test]
    fn load_imbalance_is_visible_in_stats() {
        // Heavy-tailed graph: some traversals are long -> max block cycles
        // well above the mean.
        let g = generators::barabasi_albert(500, 4, WeightModel::WeightedCascade, 3);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch = sample_batch(
            &d,
            &dg,
            DiffusionModel::IndependentCascade,
            11,
            0,
            64,
            false,
        )
        .unwrap();
        let mean = batch.stats.total_cycles / batch.stats.num_blocks.max(1) as u64;
        assert!(batch.stats.max_block_cycles >= mean);
    }
}
