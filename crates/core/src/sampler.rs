//! eIM RRR-set sampling kernels (§3.2–§3.4, Algorithm 2).
//!
//! One warp per block performs a probabilistic BFS (IC) or threshold walk
//! (LT). eIM's distinguishing choices, all modelled here:
//!
//! * the BFS queue `Q` lives in a pre-allocated **global-memory pool**, so
//!   no dynamic allocation ever happens mid-traversal and the finished
//!   queue doubles as the RRR set;
//! * set indices are assigned to blocks round-robin through a shared
//!   counter, balancing unpredictable traversal lengths;
//! * each set is sorted ascending before publication so selection can
//!   binary search (§3.2);
//! * with source elimination on (§3.4), the source is dropped in place and
//!   empty results are discarded entirely.
//!
//! [`sample_batch`] is the **fused kernel**: traversal writes directly into
//! the block's output arena (the queue *is* the RRR set — there is no
//! separate Q→R copy pass), the sort and source elimination happen in
//! place on that arena segment, the visited-bitmap reset is folded into the
//! same epilogue walk, and the per-vertex coverage histogram `C` is updated
//! in flight (the publish step's scattered atomics). Frontier expansion is
//! vectorized: each dequeued vertex's CSC neighbor slice is scanned in
//! chunks against raw RNG keystream words ([`rand_chacha::ChaCha8Rng`]'s
//! SIMD block refill) using precomputed integer acceptance thresholds
//! ([`crate::device_graph::weight_threshold`]) — bit-identical to the
//! per-edge float draw of the reference path.
//!
//! [`sample_batch_reference`] keeps the pre-fusion three-pass kernel
//! (traverse into a scratch queue, sort, copy out) as the differential
//! oracle: both paths consume identical RNG streams and produce
//! byte-identical [`FlatSampleSets`], identical [`SamplerCounters`], and
//! identical coverage histograms.
//!
//! Blocks do the traversal work for real and charge warp-level costs; the
//! resulting sets are bit-identical across runs because every set index
//! owns a deterministic RNG stream.
//!
//! Host-side, the batch mirrors the device layout: every block appends its
//! finished sets into one flat offsets + data arena (no per-set `Vec`), the
//! traversal scratch (`M` bitmap and edge-decode buffer) lives in a
//! per-worker arena reused across blocks
//! ([`eim_gpusim::Device::launch_with_scratch`]), and the merged
//! [`FlatSampleSets`] is ordered by sample index, so its bytes are
//! independent of grid layout and thread count.

use eim_diffusion::{sample_rng, DiffusionModel};
use eim_gpusim::{Device, LaunchStats, Op, SimFault, WARP_SIZE};
use eim_graph::VertexId;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::device_graph::{DeviceGraph, EdgeScratch};

/// Outcome counters of one sampling batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerCounters {
    /// Sets whose traversal visited only the source (pre-elimination) —
    /// the x-axis of Figure 5.
    pub singletons: usize,
    /// Samples discarded by source elimination.
    pub discarded: usize,
    /// Samples drawn in total.
    pub sampled: usize,
}

impl SamplerCounters {
    /// Debug-checks the accounting invariants the Figure 5 reading depends
    /// on: a sample can be discarded at most once (`discarded <= sampled`),
    /// singletons are counted pre-elimination (`singletons <= sampled`),
    /// and — since elimination discards exactly the traversals that visited
    /// only their source — `discarded` is either zero (elimination off) or
    /// equal to `singletons`.
    #[inline]
    pub fn debug_check(&self, source_elim: bool) {
        debug_assert!(
            self.discarded <= self.sampled,
            "discarded {} > sampled {}",
            self.discarded,
            self.sampled
        );
        debug_assert!(
            self.singletons <= self.sampled,
            "singletons {} > sampled {}",
            self.singletons,
            self.sampled
        );
        if source_elim {
            debug_assert_eq!(
                self.discarded, self.singletons,
                "elimination must discard exactly the singleton traversals"
            );
        } else {
            debug_assert_eq!(self.discarded, 0, "no discards without elimination");
        }
    }

    fn add(&mut self, other: &SamplerCounters) {
        self.singletons += other.singletons;
        self.discarded += other.discarded;
        self.sampled += other.sampled;
    }
}

/// One batch's RRR sets in flat CSR-style storage: a shared element arena
/// plus per-sample offsets, with a kept/discarded flag per sample. Sample
/// `i` of the batch occupies `data[offsets[i]..offsets[i + 1]]`; discarded
/// samples (source elimination, §3.4) own an empty range. The layout is
/// canonical — built in sample-index order — so equality is byte equality
/// regardless of the grid that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatSampleSets {
    /// `len + 1` element offsets into `data`.
    offsets: Vec<usize>,
    /// All kept sets' elements, concatenated in sample order.
    data: Vec<VertexId>,
    /// Whether sample `i` was kept (false = discarded by elimination).
    kept: Vec<bool>,
}

impl FlatSampleSets {
    /// Number of samples in the batch (kept and discarded).
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// Whether the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// Sample `i`'s sorted RRR set: `None` if elimination discarded it or
    /// `i` is out of range (bounds-checked like [`slice::get`]).
    pub fn get(&self, i: usize) -> Option<&[VertexId]> {
        (*self.kept.get(i)?).then(|| &self.data[self.offsets[i]..self.offsets[i + 1]])
    }

    /// Iterates samples in index order ([`FlatSampleSets::get`] per slot).
    pub fn iter(&self) -> impl Iterator<Item = Option<&[VertexId]>> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Total elements across all kept sets.
    pub fn total_elements(&self) -> usize {
        self.data.len()
    }

    /// The element arena: every kept set's members concatenated in sample
    /// order — exactly what a store appends, in append order.
    pub fn arena(&self) -> &[VertexId] {
        &self.data
    }

    /// Lengths of the kept sets in sample order (discarded slots skipped).
    pub fn kept_lens(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len())
            .filter(|&i| self.kept[i])
            .map(|i| self.offsets[i + 1] - self.offsets[i])
    }
}

/// Result of one batch launch.
pub struct SampleBatch {
    /// The batch's RRR sets, indexed by offset within the batch.
    pub sets: FlatSampleSets,
    /// Per-vertex coverage histogram over the batch: `coverage[v]` counts
    /// the kept sets containing `v` — the batch's delta to the store's `C`
    /// array, aggregated during sampling so selection warm-starts its
    /// inverted index and CELF heap from ready-made counts.
    pub coverage: Vec<u32>,
    /// Launch timing.
    pub stats: LaunchStats,
    /// Outcome counters.
    pub counters: SamplerCounters,
}

/// One simulated block's share of the batch, in local (round-robin) order:
/// local position `p` holds global slot `block_id + p * num_blocks`.
struct BlockOutput {
    offsets: Vec<usize>,
    data: Vec<VertexId>,
    kept: Vec<bool>,
    counters: SamplerCounters,
}

impl BlockOutput {
    fn with_capacity(local: usize) -> Self {
        let mut out = Self {
            offsets: Vec::with_capacity(local + 1),
            data: Vec::new(),
            kept: Vec::with_capacity(local),
            counters: SamplerCounters::default(),
        };
        out.offsets.push(0);
        out
    }
}

/// Host-side traversal scratch, one per rayon worker chunk: the visited
/// bitmap `M` (all-false between sets — Algorithm 2 line 27 restores it)
/// plus, for the fused path, the edge-decode buffer for packed graphs.
/// Reused across every block the worker executes; the simulated per-block
/// memset of `M` is still charged per block.
struct SamplerScratch {
    visited: Vec<bool>,
    queue: Vec<VertexId>,
    edges: EdgeScratch,
}

impl SamplerScratch {
    fn new(n: usize) -> Self {
        Self {
            visited: vec![false; n],
            queue: Vec::new(),
            edges: EdgeScratch::default(),
        }
    }
}

/// Samples RRR sets for indices `start..start + count` of run `seed` on
/// `device`, under `model` — the fused kernel. Grid size is `4x` the SM
/// count (persistent blocks, one warp each), with indices interleaved
/// across blocks — the paper's round-robin assignment.
///
/// Fails only when the device's fault plan schedules a transient launch
/// fault; sample content is untouched by retries (every set index owns a
/// deterministic RNG stream), so callers can simply re-invoke.
pub fn sample_batch<G: DeviceGraph>(
    device: &Device,
    graph: &G,
    model: DiffusionModel,
    seed: u64,
    start: u64,
    count: usize,
    source_elim: bool,
) -> Result<SampleBatch, SimFault> {
    let n = graph.n();
    let blocks = (device.spec().num_sms * 4).min(count.max(1));
    device.check_kernel_fault("eim_sample")?;
    let result = device.launch_with_scratch(
        "eim_sample",
        blocks,
        || SamplerScratch::new(n),
        |ctx, scratch| {
            let b = ctx.block_id();
            // Each block zeroes its own M (Algorithm 2): the simulated cost
            // is per block even though the host bitmap is a worker arena.
            ctx.charge_warp_sweep(n.div_ceil(32), ctx.spec().costs.global_access); // memset M
            let local = count.saturating_sub(b).div_ceil(blocks);
            let mut out = BlockOutput::with_capacity(local);
            let mut j = b;
            while j < count {
                let idx = start + j as u64;
                fused_sample_one(ctx, graph, model, seed, idx, source_elim, scratch, &mut out);
                j += blocks;
            }
            out
        },
    );
    Ok(merge_blocks(result, blocks, count, n, source_elim))
}

/// Samples RRR sets for an explicit list of logical `indices` of run `seed`
/// — the streaming resample kernel. Identical traversal, RNG streams, and
/// cost model to [`sample_batch`]; only the index assignment differs: block
/// `b` takes `indices[b]`, `indices[b + blocks]`, … round-robin, and the
/// merged batch is ordered by *position in `indices`* (slot `j` of the
/// result is sample `indices[j]`).
///
/// Because every set index owns a deterministic RNG stream, redrawing index
/// `i` here against a mutated graph yields exactly the set a cold batch run
/// would produce for `i` on that graph.
pub fn sample_indices<G: DeviceGraph>(
    device: &Device,
    graph: &G,
    model: DiffusionModel,
    seed: u64,
    indices: &[u64],
    source_elim: bool,
) -> Result<SampleBatch, SimFault> {
    let n = graph.n();
    let count = indices.len();
    let blocks = (device.spec().num_sms * 4).min(count.max(1));
    device.check_kernel_fault("eim_sample")?;
    let result = device.launch_with_scratch(
        "eim_sample",
        blocks,
        || SamplerScratch::new(n),
        |ctx, scratch| {
            let b = ctx.block_id();
            ctx.charge_warp_sweep(n.div_ceil(32), ctx.spec().costs.global_access); // memset M
            let local = count.saturating_sub(b).div_ceil(blocks);
            let mut out = BlockOutput::with_capacity(local);
            let mut j = b;
            while j < count {
                let idx = indices[j];
                fused_sample_one(ctx, graph, model, seed, idx, source_elim, scratch, &mut out);
                j += blocks;
            }
            out
        },
    );
    Ok(merge_blocks(result, blocks, count, n, source_elim))
}

/// The pre-fusion sampler: traverse into a scratch queue, sort, then copy
/// into the block output in a separate pass (charging the Q→R copy sweep
/// the fused kernel eliminates). Retained as the differential-testing
/// oracle — identical RNG consumption, [`FlatSampleSets`] bytes,
/// [`SamplerCounters`], and coverage histogram as [`sample_batch`].
pub fn sample_batch_reference<G: DeviceGraph>(
    device: &Device,
    graph: &G,
    model: DiffusionModel,
    seed: u64,
    start: u64,
    count: usize,
    source_elim: bool,
) -> Result<SampleBatch, SimFault> {
    let n = graph.n();
    let blocks = (device.spec().num_sms * 4).min(count.max(1));
    device.check_kernel_fault("eim_sample")?;
    let result = device.launch_with_scratch(
        "eim_sample",
        blocks,
        || SamplerScratch::new(n),
        |ctx, scratch| {
            let b = ctx.block_id();
            ctx.charge_warp_sweep(n.div_ceil(32), ctx.spec().costs.global_access); // memset M
            let local = count.saturating_sub(b).div_ceil(blocks);
            let mut out = BlockOutput::with_capacity(local);
            let mut j = b;
            while j < count {
                let idx = start + j as u64;
                let source = reference_sample_one(
                    ctx,
                    graph,
                    model,
                    seed,
                    idx,
                    &mut scratch.visited,
                    &mut scratch.queue,
                );
                let set = &scratch.queue;
                out.counters.sampled += 1;
                if set.len() == 1 {
                    out.counters.singletons += 1;
                }
                // Copy Q into the block's flat output, applying source
                // elimination during the copy (§3.4): drop the source, and
                // discard samples that reduce to empty.
                let kept = if source_elim {
                    if set.len() <= 1 {
                        debug_assert!(set.is_empty() || set[0] == source);
                        out.counters.discarded += 1;
                        false
                    } else {
                        let before = out.data.len();
                        for &v in set {
                            if v != source {
                                out.data.push(v);
                            }
                        }
                        debug_assert_eq!(
                            out.data.len() - before,
                            set.len() - 1,
                            "source must appear exactly once"
                        );
                        true
                    }
                } else {
                    out.data.extend_from_slice(set);
                    true
                };
                if kept {
                    let len = out.data.len() - out.offsets.last().copied().unwrap_or(0);
                    // The unfused kernel re-walks Q to write R.
                    ctx.charge_warp_sweep(len, ctx.spec().costs.global_access);
                    charge_publish(ctx, len);
                }
                out.offsets.push(out.data.len());
                out.kept.push(kept);
                j += blocks;
            }
            out
        },
    );
    Ok(merge_blocks(result, blocks, count, n, source_elim))
}

/// Merges per-block outputs into the canonical sample-index order and
/// aggregates the batch coverage histogram. The round-robin deal is
/// invertible — global slot j lives in block j % blocks at local position
/// j / blocks — so one sizing pass plus one copy pass produces the
/// canonical layout with no per-set allocation. Shared by both sampler
/// paths, so their results are comparable field by field.
fn merge_blocks(
    result: eim_gpusim::LaunchResult<BlockOutput>,
    blocks: usize,
    count: usize,
    n: usize,
    source_elim: bool,
) -> SampleBatch {
    let mut counters = SamplerCounters::default();
    let mut lens = vec![0usize; count];
    let mut kept = vec![false; count];
    for (b, block) in result.outputs.iter().enumerate() {
        block.counters.debug_check(source_elim);
        counters.add(&block.counters);
        for p in 0..block.kept.len() {
            let slot = b + p * blocks;
            lens[slot] = block.offsets[p + 1] - block.offsets[p];
            kept[slot] = block.kept[p];
        }
    }
    counters.debug_check(source_elim);
    let mut offsets = Vec::with_capacity(count + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &l in &lens {
        acc += l;
        offsets.push(acc);
    }
    let mut data = vec![0 as VertexId; acc];
    for (b, block) in result.outputs.iter().enumerate() {
        for p in 0..block.kept.len() {
            let slot = b + p * blocks;
            let src = &block.data[block.offsets[p]..block.offsets[p + 1]];
            data[offsets[slot]..offsets[slot] + src.len()].copy_from_slice(src);
        }
    }
    // The batch's C deltas. On the device these land via the publish step's
    // scattered atomics while sets are still in flight; the host mirror
    // materializes them from the canonical arena so the histogram is
    // deterministic and grid-independent like the sets themselves.
    let mut coverage = vec![0u32; n];
    for &v in &data {
        coverage[v as usize] += 1;
    }
    SampleBatch {
        sets: FlatSampleSets {
            offsets,
            data,
            kept,
        },
        stats: result.stats,
        counters,
        coverage,
    }
}

/// One fused sample: traverse directly into the block's output arena, sort
/// and source-eliminate in place, reset `M`, and publish — a single pass
/// over the queue segment with no Q→R copy.
#[allow(clippy::too_many_arguments)]
fn fused_sample_one<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    model: DiffusionModel,
    seed: u64,
    idx: u64,
    source_elim: bool,
    scratch: &mut SamplerScratch,
    out: &mut BlockOutput,
) {
    let mut rng = sample_rng(seed, idx);
    let n = graph.n();
    let source: VertexId = rng.gen_range(0..n as VertexId);
    // Thread 0 seeds the queue (Algorithm 2 lines 5–10).
    ctx.charge(Op::Rng, 1);
    ctx.charge(Op::GlobalAccess, 1);
    let set_start = out.data.len();
    out.data.push(source);
    scratch.visited[source as usize] = true;
    match model {
        DiffusionModel::IndependentCascade => {
            ic_traverse_fused(ctx, graph, &mut rng, scratch, &mut out.data, set_start)
        }
        DiffusionModel::LinearThreshold => {
            // The LT reverse walk touches only the arena tail, so it runs
            // on the output segment directly.
            lt_traverse(ctx, graph, &mut rng, &mut scratch.visited, &mut out.data)
        }
    }
    let q = out.data.len() - set_start;
    out.counters.sampled += 1;
    if q == 1 {
        out.counters.singletons += 1;
    }
    // Sort ascending in place (warp bitonic sort in shared memory) so
    // selection can binary-search.
    if q > 1 {
        charge_sort(ctx, q);
        out.data[set_start..].sort_unstable();
    }
    // Fused epilogue: one walk of the segment resets M (Algorithm 2 line
    // 27). The queue already IS R, so elimination is an in-place delete of
    // the source, not a filtered copy.
    for &v in &out.data[set_start..] {
        scratch.visited[v as usize] = false;
    }
    ctx.charge(Op::GlobalAccess, q as u64);
    let kept = if source_elim {
        if q <= 1 {
            out.counters.discarded += 1;
            out.data.truncate(set_start);
            false
        } else {
            let pos = set_start
                + out.data[set_start..]
                    .binary_search(&source)
                    .expect("source must appear exactly once");
            out.data.copy_within(pos + 1.., pos);
            out.data.truncate(out.data.len() - 1);
            true
        }
    } else {
        true
    };
    if kept {
        charge_publish(ctx, out.data.len() - set_start);
    }
    out.offsets.push(out.data.len());
    out.kept.push(kept);
}

/// Traverses one RRR set into `queue` via the unfused per-edge float path,
/// leaving it sorted ascending, and returns the sample's source vertex.
/// `visited` must be all-false on entry and is restored before returning.
fn reference_sample_one<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    model: DiffusionModel,
    seed: u64,
    idx: u64,
    visited: &mut [bool],
    queue: &mut Vec<VertexId>,
) -> VertexId {
    let mut rng = sample_rng(seed, idx);
    let n = graph.n();
    let source: VertexId = rng.gen_range(0..n as VertexId);
    // Thread 0 seeds the queue (Algorithm 2 lines 5–10).
    ctx.charge(Op::Rng, 1);
    ctx.charge(Op::GlobalAccess, 1);
    queue.clear();
    queue.push(source);
    visited[source as usize] = true;
    match model {
        DiffusionModel::IndependentCascade => ic_traverse(ctx, graph, &mut rng, visited, queue),
        DiffusionModel::LinearThreshold => lt_traverse(ctx, graph, &mut rng, visited, queue),
    }
    let q = queue.len();
    if q > 1 {
        charge_sort(ctx, q);
        queue.sort_unstable();
    }
    // Reset M for the vertices we touched (Algorithm 2 line 27).
    for &v in queue.iter() {
        visited[v as usize] = false;
    }
    ctx.charge(Op::GlobalAccess, q as u64);
    source
}

/// Vectorized warp-wide probabilistic BFS (IC), fused variant: every
/// dequeued vertex's CSC neighbor slice is scanned in chunks sized by the
/// RNG's buffered keystream, comparing raw 24-bit draws against the
/// precomputed integer thresholds — decision-identical to the float path
/// of [`ic_traverse`], word for word.
fn ic_traverse_fused<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    rng: &mut ChaCha8Rng,
    scratch: &mut SamplerScratch,
    data: &mut Vec<VertexId>,
    set_start: usize,
) {
    let costs = *ctx.spec();
    let wave_cost = costs.costs.global_access + costs.costs.rng + costs.costs.alu;
    let mut head = set_start;
    while head < data.len() {
        let u = data[head];
        head += 1;
        ctx.charge(Op::GlobalAccess, 1); // Q.front() + head bump
        let (nbrs, thresholds) = graph.in_edges(u, &mut scratch.edges);
        let d = nbrs.len();
        ctx.charge_warp_sweep(d, wave_cost);
        let mut i = 0usize;
        while i < d {
            let words = rng.peek_words();
            let take = (d - i).min(words.len());
            for k in 0..take {
                // One keystream word per edge: accept iff the 24-bit draw
                // clears the threshold (exactly `r <= p` in float form).
                if words[k] >> 8 <= thresholds[i + k] {
                    let v = nbrs[i + k];
                    if !scratch.visited[v as usize] {
                        // Mark in M, then atomically enqueue (§3.2).
                        scratch.visited[v as usize] = true;
                        data.push(v);
                        ctx.charge(Op::AtomicGlobal, 2); // enqueue slot + tail bump
                    }
                }
            }
            rng.consume(take);
            i += take;
        }
    }
}

/// Warp-wide probabilistic BFS (IC), unfused reference: every dequeued
/// vertex's in-neighbor list is swept 32 lanes at a time; each lane draws a
/// uniform and activates its neighbor with probability `p_vu` (Algorithm 2
/// lines 11–20).
fn ic_traverse<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    rng: &mut impl Rng,
    visited: &mut [bool],
    queue: &mut Vec<VertexId>,
) {
    let costs = *ctx.spec();
    let wave_cost = costs.costs.global_access + costs.costs.rng + costs.costs.alu;
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        ctx.charge(Op::GlobalAccess, 1); // Q.front() + head bump
        let d = graph.in_degree(u);
        ctx.charge_warp_sweep(d, wave_cost);
        for i in 0..d {
            let v = graph.in_neighbor(u, i);
            let p = graph.in_weight(u, i);
            let r: f32 = rng.gen();
            if r <= p && !visited[v as usize] {
                // Mark in M, then atomically enqueue (order matters; §3.2).
                visited[v as usize] = true;
                queue.push(v);
                ctx.charge(Op::AtomicGlobal, 2); // enqueue slot + tail bump
            }
        }
    }
}

/// LT reverse walk: each step draws a threshold and selects at most one
/// in-neighbor via the warp shuffle prefix scan (§3.3), costing
/// `O(log d)` shuffle rounds per 32-lane wave instead of `O(d)` serialized
/// atomics. Walks the tail of `queue`, so it serves both sampler paths
/// (the fused arena segment is just a queue with a nonzero start).
fn lt_traverse<G: DeviceGraph>(
    ctx: &mut eim_gpusim::BlockCtx,
    graph: &G,
    rng: &mut impl Rng,
    visited: &mut [bool],
    queue: &mut Vec<VertexId>,
) {
    let mut u = *queue.last().expect("queue seeded with source");
    loop {
        let d = graph.in_degree(u);
        if d == 0 {
            break;
        }
        ctx.charge(Op::Rng, 1); // tau, shared across the warp
        let tau: f32 = rng.gen();
        // Prefix-scan the weights wave by wave until the threshold falls.
        let waves = d.div_ceil(WARP_SIZE);
        let mut acc = 0.0f32;
        let mut chosen: Option<VertexId> = None;
        'waves: for w in 0..waves {
            ctx.charge(Op::GlobalAccess, 1); // coalesced weight load
            ctx.charge_shuffle_scan();
            let lo = w * WARP_SIZE;
            let hi = (lo + WARP_SIZE).min(d);
            for i in lo..hi {
                let p = graph.in_weight(u, i);
                let inclusive = acc + p;
                // First neighbor whose inclusive sum crosses tau while the
                // exclusive sum is still below it (§3.3).
                if inclusive >= tau && acc < tau {
                    chosen = Some(graph.in_neighbor(u, i));
                    break 'waves;
                }
                acc = inclusive;
            }
        }
        match chosen {
            Some(v) if !visited[v as usize] => {
                visited[v as usize] = true;
                queue.push(v);
                ctx.charge(Op::AtomicGlobal, 2);
                u = v;
            }
            _ => break,
        }
    }
}

/// Charges the in-place ascending sort (warp bitonic sort in shared
/// memory): `q log^2 q` comparator stages over 32 lanes.
fn charge_sort(ctx: &mut eim_gpusim::BlockCtx, q: usize) {
    let lg = (usize::BITS - (q - 1).leading_zeros()) as u64;
    ctx.charge_cycles(
        (q as u64 * lg * lg).div_ceil(WARP_SIZE as u64) * ctx.spec().costs.shared_access,
    );
}

/// Charges publishing a finished set of `len` elements (Algorithm 2 lines
/// 21–28 minus the element copy, which the fused kernel does not perform):
/// the offset bump, the `O` write, and the in-flight per-vertex coverage
/// count updates.
fn charge_publish(ctx: &mut eim_gpusim::BlockCtx, len: usize) {
    ctx.charge(Op::AtomicGlobal, 1); // atomicAdd(offset, |R_i|)
    ctx.charge(Op::GlobalAccess, 1); // O[count + 1] write
    ctx.charge(Op::AtomicGlobal, len as u64); // C[v] updates (scattered)
    ctx.charge(Op::AtomicGlobal, 1); // count bump
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device_graph::PlainDeviceGraph;
    use eim_bitpack::PackedCsc;
    use eim_gpusim::DeviceSpec;
    use eim_graph::{generators, Graph, WeightModel};

    fn device() -> Device {
        Device::new(DeviceSpec::test_small())
    }

    #[test]
    fn batch_produces_sorted_unique_sets_containing_structure() {
        let g = generators::rmat(
            200,
            1_200,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            5,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch = sample_batch(
            &d,
            &dg,
            DiffusionModel::IndependentCascade,
            42,
            0,
            100,
            false,
        )
        .unwrap();
        assert_eq!(batch.sets.len(), 100);
        assert_eq!(batch.counters.sampled, 100);
        assert_eq!(batch.counters.discarded, 0);
        for set in batch.sets.iter() {
            let s = set.expect("no discards without elimination");
            assert!(!s.is_empty());
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            assert!(s.iter().all(|&v| (v as usize) < 200));
        }
        assert!(batch.stats.elapsed_us > 0.0);
    }

    #[test]
    fn deterministic_across_launches_and_grid_sizes() {
        let g = generators::rmat(
            150,
            900,
            generators::RmatParams::MILD,
            WeightModel::WeightedCascade,
            8,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d1 = Device::new(DeviceSpec::test_small());
        let mut big = DeviceSpec::test_small();
        big.num_sms = 13; // different grid -> different block assignment
        let d2 = Device::new(big);
        let b1 = sample_batch(
            &d1,
            &dg,
            DiffusionModel::IndependentCascade,
            3,
            10,
            64,
            false,
        )
        .unwrap();
        let b2 = sample_batch(
            &d2,
            &dg,
            DiffusionModel::IndependentCascade,
            3,
            10,
            64,
            false,
        )
        .unwrap();
        assert_eq!(b1.sets, b2.sets, "content independent of grid layout");
        assert_eq!(b1.coverage, b2.coverage, "histogram independent of grid");
        let b3 = sample_batch(
            &d1,
            &dg,
            DiffusionModel::IndependentCascade,
            3,
            10,
            64,
            false,
        )
        .unwrap();
        assert_eq!(b1.sets, b3.sets);
        assert_eq!(b1.stats, b3.stats, "timing deterministic per device");
    }

    #[test]
    fn source_elimination_discards_singletons() {
        // In-star: every leaf's reverse BFS is a singleton.
        let g = generators::star_in(64, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 1, 0, 200, true).unwrap();
        assert_eq!(batch.counters.sampled, 200);
        assert!(batch.counters.singletons > 150, "mostly singletons");
        assert_eq!(batch.counters.discarded, batch.counters.singletons);
        for (i, set) in batch.sets.iter().enumerate() {
            if let Some(s) = set {
                // Hub sets: source was the hub, members are leaves only.
                assert!(!s.is_empty(), "set {i} empty but kept");
            }
        }
    }

    #[test]
    fn elimination_removes_exactly_the_source() {
        let g = generators::path(20, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let with =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 9, 0, 50, false).unwrap();
        let without =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 9, 0, 50, true).unwrap();
        for (a, b) in with.sets.iter().zip(without.sets.iter()) {
            let a = a.unwrap();
            match b {
                Some(b) => {
                    assert_eq!(b.len(), a.len() - 1);
                    assert!(b.iter().all(|v| a.contains(v)));
                }
                None => assert_eq!(a.len(), 1),
            }
        }
    }

    #[test]
    fn ic_on_deterministic_path_reaches_all_ancestors() {
        let g = generators::path(30, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 2, 0, 40, false).unwrap();
        for set in batch.sets.iter().map(|s| s.unwrap()) {
            // A set rooted at source s on the path must be exactly {0..=s}.
            let src = *set.last().unwrap();
            assert_eq!(set.len() as u32, src + 1);
            assert_eq!(set[0], 0);
        }
    }

    #[test]
    fn lt_sets_are_paths() {
        let g = generators::rmat(
            100,
            600,
            generators::RmatParams::MILD,
            WeightModel::WeightedCascade,
            4,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::LinearThreshold, 6, 0, 80, false).unwrap();
        for set in batch.sets.iter().map(|s| s.unwrap()) {
            assert!(!set.is_empty());
            assert!(set.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(batch.counters.sampled == 80);
    }

    #[test]
    fn lt_walk_terminates_on_cycle() {
        let g = generators::cycle(8, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::LinearThreshold, 7, 0, 10, false).unwrap();
        for set in batch.sets.iter().map(|s| s.unwrap()) {
            assert_eq!(set.len(), 8, "full lap then stop");
        }
    }

    #[test]
    fn load_imbalance_is_visible_in_stats() {
        // Heavy-tailed graph: some traversals are long -> max block cycles
        // well above the mean.
        let g = generators::barabasi_albert(500, 4, WeightModel::WeightedCascade, 3);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch = sample_batch(
            &d,
            &dg,
            DiffusionModel::IndependentCascade,
            11,
            0,
            64,
            false,
        )
        .unwrap();
        let mean = batch.stats.total_cycles / batch.stats.num_blocks.max(1) as u64;
        assert!(batch.stats.max_block_cycles >= mean);
    }

    #[test]
    fn get_is_bounds_checked() {
        let g = generators::path(10, WeightModel::WeightedCascade);
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 1, 0, 5, false).unwrap();
        let len = batch.sets.len();
        assert_eq!(len, 5);
        assert!(batch.sets.get(len - 1).is_some());
        assert!(batch.sets.get(len).is_none(), "index == len");
        assert!(batch.sets.get(len + 1).is_none(), "index == len + 1");
        let empty =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 1, 0, 0, false).unwrap();
        assert!(empty.sets.is_empty());
        assert!(empty.sets.get(0).is_none(), "empty batch");
        assert!(empty.sets.get(1).is_none());
    }

    #[test]
    fn coverage_histogram_matches_kept_sets() {
        let g = generators::rmat(
            180,
            1_100,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            12,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        for elim in [false, true] {
            let batch = sample_batch(
                &d,
                &dg,
                DiffusionModel::IndependentCascade,
                21,
                0,
                150,
                elim,
            )
            .unwrap();
            let mut expect = vec![0u32; 180];
            for set in batch.sets.iter().flatten() {
                for &v in set {
                    expect[v as usize] += 1;
                }
            }
            assert_eq!(batch.coverage, expect);
            let total: u32 = batch.coverage.iter().sum();
            assert_eq!(total as usize, batch.sets.total_elements());
        }
    }

    #[test]
    fn arena_and_kept_lens_describe_the_layout() {
        let g = generators::rmat(
            120,
            700,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            6,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let batch =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 4, 0, 90, true).unwrap();
        let lens: Vec<usize> = batch.sets.kept_lens().collect();
        assert_eq!(lens.iter().sum::<usize>(), batch.sets.arena().len());
        let mut cursor = 0usize;
        let mut li = 0usize;
        for set in batch.sets.iter().flatten() {
            assert_eq!(set.len(), lens[li]);
            assert_eq!(set, &batch.sets.arena()[cursor..cursor + set.len()]);
            cursor += set.len();
            li += 1;
        }
        assert_eq!(li, lens.len());
    }

    // ---- fused vs reference differential suite ------------------------

    fn assert_batches_identical(a: &SampleBatch, b: &SampleBatch, what: &str) {
        assert_eq!(a.sets, b.sets, "{what}: FlatSampleSets bytes differ");
        assert_eq!(a.counters, b.counters, "{what}: counters differ");
        assert_eq!(a.coverage, b.coverage, "{what}: coverage differs");
    }

    fn graphs_under_test() -> Vec<(&'static str, Graph)> {
        vec![
            (
                "rmat",
                generators::rmat(
                    300,
                    2_000,
                    generators::RmatParams::GRAPH500,
                    WeightModel::WeightedCascade,
                    17,
                ),
            ),
            (
                "ba",
                generators::barabasi_albert(250, 4, WeightModel::WeightedCascade, 5),
            ),
            (
                "star",
                generators::star_in(80, WeightModel::WeightedCascade),
            ),
            ("path", generators::path(40, WeightModel::WeightedCascade)),
            ("cycle", generators::cycle(12, WeightModel::WeightedCascade)),
            (
                "trivalency",
                generators::rmat(
                    200,
                    1_400,
                    generators::RmatParams::MILD,
                    WeightModel::Trivalency,
                    23,
                ),
            ),
        ]
    }

    #[test]
    fn fused_matches_reference_across_graphs_models_and_flags() {
        let d = device();
        for (name, g) in graphs_under_test() {
            let dg = PlainDeviceGraph::new(&g);
            for model in [
                DiffusionModel::IndependentCascade,
                DiffusionModel::LinearThreshold,
            ] {
                for elim in [false, true] {
                    for (seed, start, count) in [(3u64, 0u64, 120usize), (91, 57, 64), (7, 5, 1)] {
                        let fused = sample_batch(&d, &dg, model, seed, start, count, elim).unwrap();
                        let reference =
                            sample_batch_reference(&d, &dg, model, seed, start, count, elim)
                                .unwrap();
                        assert_batches_identical(
                            &fused,
                            &reference,
                            &format!("{name}/{model:?}/elim={elim}/seed={seed}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_matches_reference_on_packed_graph() {
        let g = generators::rmat(
            400,
            2_400,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            31,
        );
        let packed = PackedCsc::from_graph(&g);
        let d = device();
        for elim in [false, true] {
            let fused = sample_batch(
                &d,
                &packed,
                DiffusionModel::IndependentCascade,
                13,
                0,
                150,
                elim,
            )
            .unwrap();
            let reference = sample_batch_reference(
                &d,
                &packed,
                DiffusionModel::IndependentCascade,
                13,
                0,
                150,
                elim,
            )
            .unwrap();
            assert_batches_identical(&fused, &reference, &format!("packed/elim={elim}"));
            // And the packed view agrees with the plain view on content.
            let dg = PlainDeviceGraph::new(&g);
            let plain = sample_batch(
                &d,
                &dg,
                DiffusionModel::IndependentCascade,
                13,
                0,
                150,
                elim,
            )
            .unwrap();
            assert_eq!(fused.sets, plain.sets, "packed vs plain content");
        }
    }

    #[test]
    fn fused_results_independent_of_rayon_pool_size() {
        let g = generators::rmat(
            250,
            1_500,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            41,
        );
        let dg = PlainDeviceGraph::new(&g);
        let run = || {
            let d = device();
            let b =
                sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 5, 0, 130, true).unwrap();
            (b.sets, b.coverage, b.counters, b.stats)
        };
        let baseline = run();
        for threads in [1usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let pooled = pool.install(run);
            assert_eq!(baseline.0, pooled.0, "{threads}-thread sets");
            assert_eq!(baseline.1, pooled.1, "{threads}-thread coverage");
            assert_eq!(baseline.2, pooled.2, "{threads}-thread counters");
            assert_eq!(baseline.3, pooled.3, "{threads}-thread stats");
        }
    }

    #[test]
    fn faulted_launch_replays_to_identical_batch() {
        use eim_gpusim::{FaultPlan, FaultSpec};
        use std::sync::Arc;
        let g = generators::rmat(
            200,
            1_200,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            19,
        );
        let dg = PlainDeviceGraph::new(&g);
        let clean = sample_batch(
            &device(),
            &dg,
            DiffusionModel::IndependentCascade,
            29,
            0,
            100,
            true,
        )
        .unwrap();
        let spec = FaultSpec {
            seed: 77,
            kernel_fault_prob: 0.6,
            ..FaultSpec::default()
        };
        let faulty =
            Device::new(DeviceSpec::test_small()).with_fault_plan(Arc::new(FaultPlan::new(spec)));
        let mut faults = 0usize;
        let replayed = loop {
            match sample_batch(
                &faulty,
                &dg,
                DiffusionModel::IndependentCascade,
                29,
                0,
                100,
                true,
            ) {
                Ok(b) => break b,
                Err(_) => {
                    faults += 1;
                    assert!(faults < 64, "fault schedule never clears");
                }
            }
        };
        assert!(faults > 0, "fault plan scheduled no faults");
        assert_batches_identical(&clean, &replayed, "replay after faults");
    }

    #[test]
    fn fused_charges_strictly_less_than_reference() {
        // The fused kernel drops the Q->R copy sweep; everything else is
        // charged identically, so its cycle total must be strictly lower on
        // any batch that keeps at least one set.
        let g = generators::rmat(
            220,
            1_300,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            3,
        );
        let dg = PlainDeviceGraph::new(&g);
        let d = device();
        let fused =
            sample_batch(&d, &dg, DiffusionModel::IndependentCascade, 8, 0, 80, false).unwrap();
        let reference =
            sample_batch_reference(&d, &dg, DiffusionModel::IndependentCascade, 8, 0, 80, false)
                .unwrap();
        assert!(
            fused.stats.total_cycles < reference.stats.total_cycles,
            "fused {} vs reference {}",
            fused.stats.total_cycles,
            reference.stats.total_cycles
        );
        assert_eq!(fused.sets, reference.sets);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn counter_invariants_hold_on_random_graphs(
                gseed in 2usize..12,
                seed in 0u64..1 << 20,
                count in 1usize..96,
                elim in any::<bool>(),
            ) {
                let g = generators::rmat(
                    60 + gseed * 13,
                    400 + gseed * 80,
                    generators::RmatParams::GRAPH500,
                    WeightModel::WeightedCascade,
                    gseed as u64,
                );
                let dg = PlainDeviceGraph::new(&g);
                let d = device();
                let batch = sample_batch(
                    &d,
                    &dg,
                    DiffusionModel::IndependentCascade,
                    seed,
                    0,
                    count,
                    elim,
                )
                .unwrap();
                // Release-mode re-statement of SamplerCounters::debug_check.
                prop_assert_eq!(batch.counters.sampled, count);
                prop_assert!(batch.counters.discarded <= batch.counters.sampled);
                prop_assert!(batch.counters.singletons <= batch.counters.sampled);
                if elim {
                    prop_assert_eq!(batch.counters.discarded, batch.counters.singletons);
                } else {
                    prop_assert_eq!(batch.counters.discarded, 0);
                }
                // Singletons are a pre-elimination count: recompute them
                // from an elimination-off run of the same indices.
                let pre = sample_batch(
                    &d,
                    &dg,
                    DiffusionModel::IndependentCascade,
                    seed,
                    0,
                    count,
                    false,
                )
                .unwrap();
                let pre_singletons = pre
                    .sets
                    .iter()
                    .filter(|s| s.is_some_and(|s| s.len() == 1))
                    .count();
                prop_assert_eq!(batch.counters.singletons, pre_singletons);
                // Differential check rides along on every case.
                let reference = sample_batch_reference(
                    &d,
                    &dg,
                    DiffusionModel::IndependentCascade,
                    seed,
                    0,
                    count,
                    elim,
                )
                .unwrap();
                prop_assert_eq!(&batch.sets, &reference.sets);
                prop_assert_eq!(batch.counters, reference.counters);
            }
        }
    }
}
