//! Device seed selection (§3.5, Algorithm 3) with cost accounting.
//!
//! Greedy max-coverage, as in the CPU reference, but executed under the
//! device cost model with one of two workload-distribution strategies:
//!
//! * [`ScanStrategy::ThreadPerSet`] — eIM's choice: one *thread* per RRR
//!   set. `T_n = 32 W_n` slots, each paying the full serial binary-search
//!   cost `C_t`.
//! * [`ScanStrategy::WarpPerSet`] — the alternative the paper measures
//!   against (Figure 3): one *warp* per set. `W_n` slots, each set cheaper
//!   (`C_w < C_t`, coalesced loads + cooperative probing) but far fewer
//!   slots, so serialization grows with the number of sets.
//!
//! The makespan of each scan is `max over slots of its summed per-set
//! costs` under round-robin assignment — exactly the
//! `ceil(N / slots) * C` analysis of §3.5.

use eim_gpusim::{Device, KernelHw, GLOBAL_TRANSACTION_BYTES, WARP_SIZE};
use eim_graph::VertexId;
use eim_imm::{RrrSets, Selection};
use rayon::prelude::*;

/// Workload distribution for the selection scans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanStrategy {
    /// One thread per RRR set (eIM).
    ThreadPerSet,
    /// One warp (32 threads) per RRR set.
    WarpPerSet,
}

/// How many warp-cooperative probes amortize one thread probe: a warp
/// searches a sorted run 32-ary instead of binary, cutting probe rounds by
/// `log2(32) = 5x`, but pays intra-warp coordination — net ~4x per set.
const WARP_SEARCH_SPEEDUP: u64 = 4;

/// One greedy iteration's simulated cost: its argmax reduction plus its
/// membership scan. `cycles` and `launches` sum exactly to the parent
/// [`DeviceSelection`] totals; `elapsed_us` is the span duration for a
/// per-iteration trace event (Figure 3's warp-vs-thread crossover is only
/// visible iteration by iteration — later iterations scan mostly-covered
/// sets and cost far less than the first).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectIteration {
    /// Simulated cycles of this iteration's launches.
    pub cycles: u64,
    /// Simulated kernel launches this iteration (2, or 1 for a final
    /// argmax that found every vertex already selected).
    pub launches: u64,
    /// This iteration's simulated duration, microseconds (cycle time plus
    /// launch overheads).
    pub elapsed_us: f64,
    /// Simulated hardware counters for this iteration's launches: occupancy
    /// from slot imbalance, divergence from intra-warp makespans
    /// (ThreadPerSet) or partial tail waves (WarpPerSet), and memory
    /// traffic from the probe and count-update transactions.
    pub hw: KernelHw,
}

/// Result of a device selection: the selection itself plus its simulated
/// time.
#[derive(Clone, Debug)]
pub struct DeviceSelection {
    /// Seeds and coverage.
    pub selection: Selection,
    /// Simulated device time of all k scan iterations, microseconds.
    pub elapsed_us: f64,
    /// Total simulated cycles across all argmax + membership-scan launches.
    pub total_cycles: u64,
    /// Number of simulated kernel launches (two per greedy iteration).
    pub launches: u64,
    /// Per-greedy-iteration cost breakdown, in selection order.
    pub iterations: Vec<SelectIteration>,
}

/// Runs greedy max-coverage over `store` on `device`, charging simulated
/// time for the argmax reductions and the per-set membership scans.
/// Produces bit-identical seeds to [`eim_imm::select_seeds`].
pub fn select_on_device<S: RrrSets + ?Sized>(
    device: &Device,
    store: &S,
    k: usize,
    strategy: ScanStrategy,
) -> DeviceSelection {
    let spec = *device.spec();
    let costs = spec.costs;
    let n = store.num_vertices();
    let num_sets = store.num_sets();
    let mut counts: Vec<u32> = store.counts().to_vec();
    let mut covered_flags = vec![false; num_sets];
    let mut covered = 0usize;
    let mut selected = vec![false; n];
    let mut seeds: Vec<VertexId> = Vec::with_capacity(k);
    let mut total_cycles: u64 = 0;
    let mut launches = 0u64;
    let mut iterations: Vec<SelectIteration> = Vec::with_capacity(k);

    let slots = match strategy {
        ScanStrategy::ThreadPerSet => spec.thread_slots(),
        ScanStrategy::WarpPerSet => spec.warp_slots(),
    };
    // Round-robin assignment only ever lands sets on the first
    // `min(slots, num_sets)` slots; the rest stay empty and would only pad
    // the makespan scan with zeros.
    let used_slots = slots.min(num_sets.max(1));
    // Rayon with a single worker still pays per-call pool dispatch; the
    // simulated cost model is identical either way, so take the serial
    // path outright (the same convention as `eim_imm::select_seeds`).
    let serial = rayon::current_num_threads() <= 1;

    let push_iteration =
        |total_cycles: u64, launches: u64, hw: KernelHw, iters: &mut Vec<SelectIteration>| {
            let done: u64 = iters.iter().map(|it| it.cycles).sum();
            let done_launches: u64 = iters.iter().map(|it| it.launches).sum();
            let cycles = total_cycles - done;
            let l = launches - done_launches;
            iters.push(SelectIteration {
                cycles,
                launches: l,
                elapsed_us: spec.cycles_to_us(cycles) + l as f64 * costs.kernel_launch_us,
                hw,
            });
        };

    let warp_slots = spec.warp_slots() as u64;
    for _ in 0..k {
        // argmax_u C[u]: a grid-stride reduction over n counts.
        let argmax_cycles = (n as u64).div_ceil(spec.thread_slots() as u64) * costs.global_access
            + 10 * costs.shuffle;
        total_cycles += argmax_cycles;
        launches += 1;
        // The argmax is uniform grid-stride work: every warp slot busy for
        // the whole launch, no divergence; one coalesced 32-wide load per
        // warp over the n counts.
        let mut hw = KernelHw {
            occ_busy_cycles: argmax_cycles * warp_slots,
            occ_capacity_cycles: argmax_cycles * warp_slots,
            active_lane_cycles: WARP_SIZE as u64 * argmax_cycles,
            global_transactions: (n as u64).div_ceil(WARP_SIZE as u64),
            ..KernelHw::default()
        };
        hw.global_bytes = hw.global_transactions * GLOBAL_TRANSACTION_BYTES;
        let best = if serial {
            let mut best = (0u32, usize::MAX);
            for (v, &c) in counts.iter().enumerate() {
                if !selected[v] && (best.1 == usize::MAX || c > best.0) {
                    best = (c, v);
                }
            }
            best
        } else {
            (0..n)
                .into_par_iter()
                .filter(|&v| !selected[v])
                .map(|v| (counts[v], v))
                .reduce(
                    || (0u32, usize::MAX),
                    |a, b| {
                        if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) {
                            b
                        } else {
                            a
                        }
                    },
                )
        };
        if best.1 == usize::MAX {
            // The dangling argmax still launched: give it its own entry so
            // the breakdown sums to the totals.
            push_iteration(total_cycles, launches, hw, &mut iterations);
            break;
        }
        let v = best.1 as VertexId;
        selected[best.1] = true;
        seeds.push(v);

        // Membership scan (Algorithm 3): per-set cost depends on covered
        // state, probe count, and — when found — the count-update work.
        // Each entry: (cycles, found, global transactions, atomics,
        // tail-wave idle lane-cycles for WarpPerSet).
        let scan_set = |i: usize| {
            {
                if covered_flags[i] {
                    // F[i] load only (coalesced).
                    return (costs.alu, false, 0, 0, 0);
                }
                let (found, probes) = store.contains_with_probes(i, v);
                let len = store.set_len(i) as u64;
                let (cycles, txns, atomics, tail_idle) = match strategy {
                    ScanStrategy::ThreadPerSet => {
                        // Each probe is a dependent, uncoalesced load into R.
                        let search = probes as u64 * costs.global_latency;
                        if found {
                            // Serial decrement of every member's count.
                            let c = search + costs.atomic_global * len + costs.global_access;
                            (c, probes as u64 + len + 1, len, 0)
                        } else {
                            (search, probes as u64, 0, 0)
                        }
                    }
                    ScanStrategy::WarpPerSet => {
                        let rounds = (probes as u64).div_ceil(WARP_SEARCH_SPEEDUP);
                        let search = rounds * costs.global_latency;
                        if found {
                            // 32 lanes decrement cooperatively; the final
                            // partial wave predicates off its unused lanes.
                            let waves = len.div_ceil(WARP_SIZE as u64);
                            let c = search + costs.atomic_global * waves + costs.global_access;
                            let idle = (waves * WARP_SIZE as u64 - len) * costs.atomic_global;
                            (c, rounds + waves + 1, len, idle)
                        } else {
                            (search, rounds, 0, 0)
                        }
                    }
                };
                (costs.alu + cycles, found, txns, atomics, tail_idle)
            }
        };
        let per_set: Vec<(u64, bool, u64, u64, u64)> = if serial {
            (0..num_sets).map(scan_set).collect()
        } else {
            (0..num_sets).into_par_iter().map(scan_set).collect()
        };
        // Round-robin slot assignment (the §3.5 schedule): the scan drains
        // when the busiest slot does; the per-slot sums also feed the
        // occupancy and divergence counters below.
        let mut slot_sums = vec![0u64; used_slots];
        for (i, &(c, ..)) in per_set.iter().enumerate() {
            slot_sums[i % used_slots] += c;
        }
        let scan_makespan = slot_sums.iter().copied().max().unwrap_or(0);
        total_cycles += scan_makespan;
        launches += 1;

        match strategy {
            ScanStrategy::ThreadPerSet => {
                // 32 consecutive thread slots form a warp; the warp is
                // resident until its slowest lane drains, and every cycle a
                // lane waits under that makespan is divergence.
                for warp in slot_sums.chunks(WARP_SIZE) {
                    let wmax = warp.iter().copied().max().unwrap_or(0);
                    let wsum: u64 = warp.iter().sum();
                    hw.occ_busy_cycles += wmax;
                    hw.active_lane_cycles += wsum;
                    hw.idle_lane_cycles += WARP_SIZE as u64 * wmax - wsum;
                }
            }
            ScanStrategy::WarpPerSet => {
                // Each warp slot is busy for its summed per-set cycles; the
                // only predicated-off lanes are the atomic tail waves.
                let scanned: u64 = slot_sums.iter().sum();
                let tail_idle: u64 = per_set.iter().map(|&(.., idle)| idle).sum();
                hw.occ_busy_cycles += scanned;
                hw.active_lane_cycles += (WARP_SIZE as u64 * scanned).saturating_sub(tail_idle);
                hw.idle_lane_cycles += tail_idle;
            }
        }
        hw.occ_capacity_cycles += warp_slots * scan_makespan;
        let scan_txns: u64 = per_set.iter().map(|&(_, _, t, ..)| t).sum();
        hw.global_transactions += scan_txns;
        hw.global_bytes += scan_txns * GLOBAL_TRANSACTION_BYTES;
        hw.atomics += per_set.iter().map(|&(_, _, _, a, _)| a).sum::<u64>();

        // Apply the updates the scan performed (host mirror of the device
        // writes): mark covered sets, decrement member counts.
        for (i, &(_, found, ..)) in per_set.iter().enumerate() {
            if found {
                covered_flags[i] = true;
                covered += 1;
                let (s, e) = store.set_bounds(i);
                for idx in s..e {
                    counts[store.element(idx) as usize] -= 1;
                }
            }
        }
        push_iteration(total_cycles, launches, hw, &mut iterations);
    }

    DeviceSelection {
        selection: Selection {
            seeds,
            covered_sets: covered,
            num_sets,
        },
        elapsed_us: spec.cycles_to_us(total_cycles) + launches as f64 * costs.kernel_launch_us,
        total_cycles,
        launches,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eim_gpusim::DeviceSpec;
    use eim_imm::{select_seeds, PlainRrrStore, RrrStoreBuilder};
    use rand::{Rng, SeedableRng};

    fn random_store(n: usize, sets: usize, seed: u64) -> PlainRrrStore {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut store = PlainRrrStore::new(n);
        for _ in 0..sets {
            let len = rng.gen_range(1..12);
            let mut set: Vec<u32> = (0..len).map(|_| rng.gen_range(0..n as u32)).collect();
            set.sort_unstable();
            set.dedup();
            store.append_set(&set);
        }
        store
    }

    #[test]
    fn matches_cpu_reference_selection() {
        let store = random_store(120, 400, 5);
        let device = Device::new(DeviceSpec::test_small());
        for k in [1, 5, 10] {
            let dev = select_on_device(&device, &store, k, ScanStrategy::ThreadPerSet);
            let cpu = select_seeds(&store, k);
            assert_eq!(dev.selection, cpu, "k = {k}");
        }
    }

    #[test]
    fn strategies_agree_on_seeds_but_not_time() {
        let store = random_store(200, 3_000, 9);
        let device = Device::new(DeviceSpec::test_small());
        let t = select_on_device(&device, &store, 8, ScanStrategy::ThreadPerSet);
        let w = select_on_device(&device, &store, 8, ScanStrategy::WarpPerSet);
        assert_eq!(t.selection, w.selection);
        assert_ne!(t.elapsed_us, w.elapsed_us);
    }

    #[test]
    fn figure3_crossover_thread_wins_at_scale() {
        // Small N: warps win (cheaper per set, enough slots). Large N:
        // threads win. Mirrors Figure 3 with k fixed.
        let device = Device::new(DeviceSpec::rtx_a6000());
        let small = random_store(100, 2_000, 1);
        let ts = select_on_device(&device, &small, 3, ScanStrategy::ThreadPerSet);
        let ws = select_on_device(&device, &small, 3, ScanStrategy::WarpPerSet);
        assert!(
            ws.elapsed_us <= ts.elapsed_us,
            "small N: warp {} vs thread {}",
            ws.elapsed_us,
            ts.elapsed_us
        );
        let large = random_store(100, 600_000, 2);
        let tl = select_on_device(&device, &large, 3, ScanStrategy::ThreadPerSet);
        let wl = select_on_device(&device, &large, 3, ScanStrategy::WarpPerSet);
        assert!(
            tl.elapsed_us < wl.elapsed_us,
            "large N: thread {} vs warp {}",
            tl.elapsed_us,
            wl.elapsed_us
        );
    }

    #[test]
    fn covered_sets_cost_almost_nothing_in_later_iterations() {
        // One dominating vertex: after seed 1 everything is covered, so
        // iteration 2's scan must be much cheaper than iteration 1's.
        let mut store = PlainRrrStore::new(50);
        for i in 0..2_000u32 {
            store.append_set(&[7, 10 + (i % 3)]);
        }
        let device = Device::new(DeviceSpec::test_small());
        let one = select_on_device(&device, &store, 1, ScanStrategy::ThreadPerSet);
        let two = select_on_device(&device, &store, 2, ScanStrategy::ThreadPerSet);
        let second_iter = two.elapsed_us - one.elapsed_us;
        assert!(
            second_iter < one.elapsed_us,
            "first {} second {}",
            one.elapsed_us,
            second_iter
        );
        assert_eq!(two.selection.covered_sets, 2_000);
    }

    #[test]
    fn empty_store_selects_lowest_ids_quickly() {
        let store = PlainRrrStore::new(10);
        let device = Device::new(DeviceSpec::test_small());
        let r = select_on_device(&device, &store, 3, ScanStrategy::ThreadPerSet);
        assert_eq!(r.selection.seeds, vec![0, 1, 2]);
        assert_eq!(r.selection.covered_sets, 0);
    }

    #[test]
    fn iteration_breakdown_sums_to_totals() {
        let store = random_store(150, 2_000, 21);
        let device = Device::new(DeviceSpec::test_small());
        for strategy in [ScanStrategy::ThreadPerSet, ScanStrategy::WarpPerSet] {
            let r = select_on_device(&device, &store, 7, strategy);
            assert_eq!(r.iterations.len(), 7);
            assert_eq!(
                r.iterations.iter().map(|i| i.cycles).sum::<u64>(),
                r.total_cycles
            );
            assert_eq!(
                r.iterations.iter().map(|i| i.launches).sum::<u64>(),
                r.launches
            );
            for it in &r.iterations {
                assert_eq!(it.launches, 2);
                assert!(it.cycles > 0);
                assert!(it.elapsed_us > 0.0);
            }
        }
    }

    #[test]
    fn exhausted_vertices_yield_a_dangling_argmax_iteration() {
        // k > n: after n picks every vertex is selected and the final
        // argmax launches but selects nothing.
        let store = PlainRrrStore::new(3);
        let device = Device::new(DeviceSpec::test_small());
        let r = select_on_device(&device, &store, 5, ScanStrategy::ThreadPerSet);
        assert_eq!(r.selection.seeds, vec![0, 1, 2]);
        assert_eq!(r.iterations.len(), 4);
        assert_eq!(r.iterations.last().unwrap().launches, 1);
        assert_eq!(
            r.iterations.iter().map(|i| i.cycles).sum::<u64>(),
            r.total_cycles
        );
        assert_eq!(
            r.iterations.iter().map(|i| i.launches).sum::<u64>(),
            r.launches
        );
    }

    #[test]
    fn deterministic() {
        let store = random_store(80, 500, 13);
        let device = Device::new(DeviceSpec::test_small());
        let a = select_on_device(&device, &store, 6, ScanStrategy::ThreadPerSet);
        let b = select_on_device(&device, &store, 6, ScanStrategy::ThreadPerSet);
        assert_eq!(a.selection, b.selection);
        assert_eq!(a.elapsed_us, b.elapsed_us);
    }
}
