//! Device memory planning and footprint reporting.

/// Static per-run scratch the sampler needs besides graph and store: the
/// per-block visited bitmaps `M`, the per-block global-memory queue pool
/// (eIM's replacement for gIM's dynamic allocations — sized to the worst
/// case, one full vertex set per block), and the count array `C`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScratchPlan {
    /// `M`: one bit per vertex per block.
    pub bitmap_bytes: usize,
    /// `Q` pool: `n` u32 slots per block.
    pub queue_bytes: usize,
    /// `C`: one u32 per vertex.
    pub counts_bytes: usize,
}

impl ScratchPlan {
    /// Plans scratch for `n` vertices and `blocks` resident blocks.
    pub fn new(n: usize, blocks: usize) -> Self {
        Self {
            bitmap_bytes: blocks * n.div_ceil(8),
            queue_bytes: blocks * n * 4,
            counts_bytes: n * 4,
        }
    }

    /// Total scratch bytes.
    pub fn total(&self) -> usize {
        self.bitmap_bytes + self.queue_bytes + self.counts_bytes
    }
}

/// Where the device memory of a finished run went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Network data (CSC, packed or plain).
    pub graph_bytes: usize,
    /// RRR store (`R` + `O`) at the end of the run.
    pub store_bytes: usize,
    /// Sampler scratch (bitmaps + queue pool + counts).
    pub scratch_bytes: usize,
    /// High-water mark of total device usage.
    pub peak_bytes: usize,
}

impl MemoryFootprint {
    /// Sum of the live components at the end of the run.
    pub fn resident_bytes(&self) -> usize {
        self.graph_bytes + self.store_bytes + self.scratch_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_scales_with_blocks_and_vertices() {
        let p = ScratchPlan::new(1000, 16);
        assert_eq!(p.bitmap_bytes, 16 * 125);
        assert_eq!(p.queue_bytes, 16 * 4000);
        assert_eq!(p.counts_bytes, 4000);
        assert_eq!(p.total(), 16 * 125 + 16 * 4000 + 4000);
    }

    #[test]
    fn bitmap_rounds_up() {
        let p = ScratchPlan::new(9, 1);
        assert_eq!(p.bitmap_bytes, 2);
    }

    #[test]
    fn footprint_sums() {
        let f = MemoryFootprint {
            graph_bytes: 100,
            store_bytes: 200,
            scratch_bytes: 50,
            peak_bytes: 400,
        };
        assert_eq!(f.resident_bytes(), 350);
    }
}
