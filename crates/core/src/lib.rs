#![warn(missing_docs)]

//! # eim-core
//!
//! **eIM** — efficient Influence Maximization (the paper's contribution):
//! a GPU IMM implementation combining
//!
//! * log-encoded network data and RRR storage (§3.1 — [`eim_bitpack`]),
//! * RRR sampling by one warp-wide probabilistic BFS per block with a
//!   **global-memory queue**, eliminating gIM's dynamic allocations
//!   (§3.2, Algorithm 2 — [`sampler`]),
//! * an LT sampler whose neighbor selection uses a warp shuffle prefix scan
//!   instead of serialized atomic adds (§3.3),
//! * source-vertex elimination (§3.4),
//! * **thread-based** (one thread per RRR set) seed-selection scans
//!   (§3.5, Algorithm 3 — [`select`]).
//!
//! It runs on the [`eim_gpusim`] execution-model simulator: every kernel
//! does its real work on the CPU while charging simulated device cycles, so
//! seed sets and memory numbers are exact and timing reflects the modelled
//! GPU (see the workspace DESIGN.md for the substitution rationale).
//!
//! ```
//! use eim_core::EimBuilder;
//! use eim_graph::{generators, WeightModel};
//!
//! let g = generators::barabasi_albert(300, 3, WeightModel::WeightedCascade, 1);
//! let r = EimBuilder::new(&g).k(4).epsilon(0.3).seed(7).run().unwrap();
//! assert_eq!(r.seeds.len(), 4);
//! assert!(r.sim_time_us() > 0.0);
//! ```

mod builder;
mod device_graph;
mod engine;
mod memory;
mod multigpu;
mod resample;
pub mod sampler;
pub mod select;

pub use builder::{EimBuilder, EimResult};
pub use device_graph::{
    weight_threshold, DeviceGraph, EdgeScratch, PackedDeviceGraph, PlainDeviceGraph,
};
pub use engine::EimEngine;
pub use memory::MemoryFootprint;
pub use multigpu::{DeviceRecoverySummary, MultiGpuEimEngine};
pub use resample::DeviceResampler;
pub use select::ScanStrategy;
