//! The eIM engine: ties sampler, store, and selection together as an
//! [`ImmEngine`] backend for the shared IMM driver.

use eim_bitpack::PackedCsc;
use eim_gpusim::ArgValue;
use eim_gpusim::{CopyEvent, CopyStream, Device, MemoryError, TransferDirection};
use eim_graph::Graph;
use eim_imm::{
    degree_remap, AnyRrrStore, DeviceManifest, EngineError, EngineManifest, ImmConfig, ImmEngine,
    PackedRrrBatch, RecoveryPolicy, RecoveryReport, RrrSets, RrrStoreBuilder, Selection,
};

use crate::device_graph::{DeviceGraph, PackedDeviceGraph, PlainDeviceGraph};
use crate::memory::{MemoryFootprint, ScratchPlan};
use crate::sampler::{sample_batch, SampleBatch, SamplerCounters};
use crate::select::{select_on_device, ScanStrategy};

enum GraphRepr<'g> {
    Plain(PlainDeviceGraph<'g>),
    Packed(PackedDeviceGraph),
}

impl GraphRepr<'_> {
    fn device_bytes(&self) -> usize {
        match self {
            GraphRepr::Plain(g) => g.device_bytes(),
            GraphRepr::Packed(g) => DeviceGraph::device_bytes(g),
        }
    }
}

fn to_engine_error(e: MemoryError) -> EngineError {
    EngineError::from(e)
}

/// Sets per spilled batch under host-spill degradation. Small enough that a
/// few evictions relieve a marginal deficit, big enough to amortize the
/// per-batch PCIe latency.
const SPILL_BATCH_SETS: usize = 1024;

/// eIM on a simulated device. Construct with [`EimEngine::new`], then either
/// drive it manually or hand it to [`eim_imm::run_imm`] (which
/// [`crate::EimBuilder`] does for you).
pub struct EimEngine<'g> {
    device: Device,
    /// The device's DMA engine: the graph upload and spill/reload traffic
    /// queue here instead of stalling compute.
    stream: CopyStream,
    /// Pending initial graph upload; the first sampling round (or selection,
    /// for a degenerate run) waits on it, so upload and compute overlap.
    upload: Option<CopyEvent>,
    graph: GraphRepr<'g>,
    config: ImmConfig,
    scan: ScanStrategy,
    store: AnyRrrStore,
    next_index: u64,
    counters: SamplerCounters,
    store_alloc_bytes: usize,
    scratch: ScratchPlan,
    policy: RecoveryPolicy,
    report: RecoveryReport,
    /// Host-resident copies of the oldest `spill_cursor` sets, evicted under
    /// memory pressure in `Degrade` mode. The canonical store keeps every
    /// set (selection scans all of them); spilling reduces only the
    /// *device-resident* byte accounting.
    spill_arena: Vec<PackedRrrBatch>,
    spill_cursor: usize,
    spilled_bytes: usize,
}

impl<'g> EimEngine<'g> {
    /// Builds the engine, placing network data and sampler scratch on the
    /// device. Fails with OOM if the graph alone does not fit.
    pub fn new(
        graph: &'g Graph,
        config: ImmConfig,
        device: Device,
        scan: ScanStrategy,
    ) -> Result<Self, EngineError> {
        let n = graph.num_vertices();
        config.validate(n);
        let repr = if config.packed {
            GraphRepr::Packed(PackedDeviceGraph::new(PackedCsc::from_graph(graph)))
        } else {
            GraphRepr::Plain(PlainDeviceGraph::new(graph))
        };
        let blocks = device.spec().num_sms * 4;
        let scratch = ScratchPlan::new(n, blocks);
        device
            .memory()
            .alloc(repr.device_bytes() + scratch.total())
            .map_err(to_engine_error)?;
        // Upload the network over PCIe on the copy stream; the run's
        // timeline starts here, but the clock only moves once someone
        // waits on the event (the first sampling round hides behind it).
        let mut stream = device.copy_stream();
        let upload = Some(stream.enqueue(
            &device,
            repr.device_bytes(),
            TransferDirection::HostToDevice,
        ));
        let store = if config.compressed {
            AnyRrrStore::compressed(n, degree_remap(graph))
        } else {
            AnyRrrStore::new(n, config.packed)
        };
        Ok(Self {
            device,
            stream,
            upload,
            graph: repr,
            store,
            config,
            scan,
            next_index: 0,
            counters: SamplerCounters::default(),
            store_alloc_bytes: 0,
            scratch,
            policy: RecoveryPolicy::abort(),
            report: RecoveryReport::default(),
            spill_arena: Vec::new(),
            spill_cursor: 0,
            spilled_bytes: 0,
        })
    }

    /// The device this engine runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Sampling outcome counters so far.
    pub fn counters(&self) -> SamplerCounters {
        self.counters
    }

    /// Current memory attribution.
    pub fn footprint(&self) -> MemoryFootprint {
        MemoryFootprint {
            graph_bytes: self.graph.device_bytes(),
            store_bytes: self.store.bytes(),
            scratch_bytes: self.scratch.total(),
            peak_bytes: self.device.memory_stats().peak,
        }
    }

    fn run_batch(&mut self, count: usize) -> Result<SampleBatch, EngineError> {
        let (device, config) = (&self.device, &self.config);
        match &self.graph {
            GraphRepr::Plain(g) => sample_batch(
                device,
                g,
                config.model,
                config.seed,
                self.next_index,
                count,
                config.source_elimination,
            ),
            GraphRepr::Packed(g) => sample_batch(
                device,
                g,
                config.model,
                config.seed,
                self.next_index,
                count,
                config.source_elimination,
            ),
        }
        .map_err(EngineError::from)
    }

    /// Bytes of the store that must be device-resident (total minus what
    /// was spilled to the host).
    fn resident_store_bytes(&self) -> usize {
        self.store.bytes().saturating_sub(self.spilled_bytes)
    }

    /// Evicts the next [`SPILL_BATCH_SETS`] oldest sets to host memory,
    /// paying the d2h transfer on the simulated clock. Returns `false` once
    /// every stored set is already host-resident (nothing left to evict).
    fn spill_oldest_batch(&mut self) -> bool {
        let total = self.store.num_sets();
        if self.spill_cursor >= total {
            return false;
        }
        let end = (self.spill_cursor + SPILL_BATCH_SETS).min(total);
        // A compressed store ships its own delta frames (rank-space pages):
        // the eviction moves compressed bytes over PCIe, not re-inflated ids.
        let batch = match self.store.as_compressed() {
            Some(c) => PackedRrrBatch::pack_range_delta(c, self.spill_cursor, end),
            None => PackedRrrBatch::pack_range(&self.store, self.spill_cursor, end),
        };
        let bytes = batch.device_bytes();
        // The eviction rides the copy stream (queueing behind an in-flight
        // graph upload) but is waited on immediately: the relieved memory
        // must be visible before the allocator retries.
        let ts = self.device.clock_us();
        let ev = self
            .stream
            .enqueue(&self.device, bytes, TransferDirection::DeviceToHost);
        self.stream.wait_event(&self.device, &ev);
        self.device.run_trace().record_recovery(
            "recover:spill",
            ts,
            vec![
                ("sets", ArgValue::U64((end - self.spill_cursor) as u64)),
                ("bytes", ArgValue::U64(bytes as u64)),
            ],
        );
        self.spill_cursor = end;
        self.spilled_bytes += bytes;
        self.report.spill_events += 1;
        self.report.spilled_bytes += bytes;
        self.spill_arena.push(batch);
        true
    }

    /// Grows the device allocation backing `R`/`O` when the store outgrew
    /// it: reserve the new extent, copy, release the old one. The transient
    /// old+new residency is what makes growth a real OOM hazard. Under
    /// `Degrade`, an OOM here triggers host-spill of the oldest packed
    /// batches (shrinking the resident footprint) before giving up; an
    /// exact-fit allocation (no 1.5x headroom) is the last resort.
    fn ensure_store_capacity(&mut self) -> Result<(), EngineError> {
        loop {
            let needed = self.resident_store_bytes();
            if needed <= self.store_alloc_bytes {
                return Ok(());
            }
            let new_alloc = (needed * 3 / 2).max(4096);
            let err = match self.device.memory().alloc(new_alloc) {
                Ok(()) => {
                    self.device.memory().free(self.store_alloc_bytes);
                    self.device.advance_clock(
                        self.device
                            .spec()
                            .device_copy_us(self.store_alloc_bytes.min(needed)),
                    );
                    self.store_alloc_bytes = new_alloc;
                    return Ok(());
                }
                Err(e) => e,
            };
            if !self.policy.allows_degrade() {
                return Err(to_engine_error(err));
            }
            // Exact fit before spilling: growth headroom is a luxury.
            if new_alloc > needed && self.device.memory().alloc(needed).is_ok() {
                self.device.memory().free(self.store_alloc_bytes);
                self.device.advance_clock(
                    self.device
                        .spec()
                        .device_copy_us(self.store_alloc_bytes.min(needed)),
                );
                self.store_alloc_bytes = needed;
                return Ok(());
            }
            if !self.spill_oldest_batch() {
                return Err(to_engine_error(err));
            }
        }
    }
}

impl ImmEngine for EimEngine<'_> {
    fn n(&self) -> usize {
        self.store.num_vertices()
    }

    fn extend_to(&mut self, target: usize) -> Result<(), EngineError> {
        // Heal first: a previous call may have appended sets and then OOMed
        // growing the store allocation. Retrying (possibly after a split or
        // a pressure window expiring) must fix that capacity deficit even
        // when the sample target itself is already reached.
        self.ensure_store_capacity()?;
        // Every sampled traversal counts toward theta; eliminated-to-empty
        // samples are not stored (see [`ImmEngine::logical_sets`]).
        if (self.next_index as usize) >= target {
            return Ok(());
        }
        let batch_size = target - self.next_index as usize;
        // A faulted launch commits nothing: next_index, counters, and the
        // store are untouched, so a retry resamples the identical indices.
        let batch = self.run_batch(batch_size)?;
        self.next_index = target as u64;
        self.device.advance_clock(batch.stats.elapsed_us);
        // The first round computed while the graph upload was in flight;
        // the round is over only when both have finished.
        if let Some(upload) = self.upload.take() {
            self.stream.wait_event(&self.device, &upload);
        }
        self.counters.sampled += batch.counters.sampled;
        self.counters.singletons += batch.counters.singletons;
        self.counters.discarded += batch.counters.discarded;
        // Bulk-ingest the batch: the arena is already in append order and
        // the sampler aggregated the C deltas in flight, so the store grows
        // without re-walking any set.
        let lens: Vec<usize> = batch.sets.kept_lens().collect();
        self.store
            .append_batch(batch.sets.arena(), &lens, &batch.coverage);
        self.ensure_store_capacity()?;
        Ok(())
    }

    fn logical_sets(&self) -> usize {
        self.next_index as usize
    }

    fn select(&mut self, k: usize) -> Selection {
        // A run that never sampled still owes the graph upload.
        if let Some(upload) = self.upload.take() {
            self.stream.wait_event(&self.device, &upload);
        }
        // Selection scans every stored set; spilled batches must be
        // re-streamed from the host first (the degraded-mode cost).
        if self.spilled_bytes > 0 {
            let ts = self.device.clock_us();
            let ev = self.stream.enqueue(
                &self.device,
                self.spilled_bytes,
                TransferDirection::HostToDevice,
            );
            self.stream.wait_event(&self.device, &ev);
            self.device.run_trace().record_recovery(
                "recover:reload",
                ts,
                vec![("bytes", ArgValue::U64(self.spilled_bytes as u64))],
            );
            self.report.reloaded_bytes += self.spilled_bytes;
            self.report.degraded_rounds += 1;
        }
        // The covered-flag array F is transient device scratch.
        let flag_bytes = self.store.num_sets().div_ceil(8);
        let flags_ok = self.device.memory().alloc(flag_bytes).is_ok();
        let result = select_on_device(&self.device, &self.store, k, self.scan);
        if flags_ok {
            self.device.memory().free(flag_bytes);
        }
        // A compressed store pays for block decode on the way into the
        // inverted index: one pass over every stored element, a handful of
        // ALU ops each (shift/mask/or plus the prefix-sum add).
        if let Some(c) = self.store.as_compressed() {
            const DECODE_CYCLES_PER_ELEMENT: u64 = 4;
            let cycles = c.total_elements() as u64 * DECODE_CYCLES_PER_ELEMENT;
            self.device
                .advance_clock(self.device.spec().cycles_to_us(cycles));
            let metrics = self.device.run_trace().metrics();
            metrics.counter_add("eim_rrr_decode_cycles", &[], cycles);
            metrics.counter_add("eim_rrr_compressed_bytes", &[], c.bytes() as u64);
            metrics.gauge_max(
                "eim_rrr_compression_ratio_pct",
                (c.compression_ratio() * 100.0) as u64,
            );
        }
        // Residency high-water for the live dashboard: bytes the RRR store
        // holds at selection time, compressed or plain.
        self.device
            .run_trace()
            .metrics()
            .gauge_max("eim_rrr_store_bytes", self.store.bytes() as u64);
        // `select_on_device` models its launches analytically rather than
        // through `Device::launch`, so record the kernel work here — one
        // event per greedy iteration, so the Figure 3 warp-vs-thread
        // crossover (first iteration dominant, later ones cheap) is visible
        // in the Perfetto timeline rather than flattened into one span.
        let mut ts = self.device.advance_clock(result.elapsed_us);
        for (i, iter) in result.iterations.iter().enumerate() {
            self.device.run_trace().record_kernel_hw(
                &format!("eim_select:iter{i}"),
                ts,
                iter.elapsed_us,
                iter.launches as usize,
                iter.cycles,
                0,
                &iter.hw,
            );
            ts += iter.elapsed_us;
        }
        result.selection
    }

    fn store(&self) -> &dyn RrrSets {
        &self.store
    }

    fn elapsed_us(&self) -> f64 {
        self.device.clock_us()
    }

    fn advance_time(&mut self, us: f64) {
        self.device.advance_clock(us);
    }

    fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    fn recovery_report(&self) -> RecoveryReport {
        self.report
    }

    fn checkpoint_manifest(&self) -> EngineManifest {
        EngineManifest {
            devices: vec![DeviceManifest {
                ordinal: 0,
                clock_us: self.device.clock_us(),
                evicted: false,
                partition_bytes: self.store.bytes(),
            }],
            gathered_bytes: 0,
            store_alloc_bytes: self.store_alloc_bytes,
        }
    }

    fn restore_manifest(&mut self, m: &EngineManifest) -> Result<(), EngineError> {
        if m.devices.is_empty() {
            return Ok(());
        }
        // The replay already sampled everything; settle the graph upload so
        // the pinned clock below is final.
        if let Some(upload) = self.upload.take() {
            self.stream.wait_event(&self.device, &upload);
        }
        // Pin the store allocation: the replay's single bulk extension grew
        // it along a different (cheaper) path than the original incremental
        // run, and resumed timing must match the original exactly.
        self.device.memory().free(self.store_alloc_bytes);
        self.device
            .memory()
            .alloc(m.store_alloc_bytes)
            .map_err(to_engine_error)?;
        self.store_alloc_bytes = m.store_alloc_bytes;
        self.device.clock().set_us(m.devices[0].clock_us);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eim_gpusim::DeviceSpec;
    use eim_graph::{generators, WeightModel};
    use eim_imm::run_imm;

    fn cfg() -> ImmConfig {
        ImmConfig::paper_default()
            .with_k(3)
            .with_epsilon(0.3)
            .with_seed(11)
    }

    fn device() -> Device {
        Device::new(DeviceSpec::rtx_a6000_with_mem(64 << 20))
    }

    #[test]
    fn full_run_on_scale_free_graph() {
        let g = generators::barabasi_albert(400, 3, WeightModel::WeightedCascade, 2);
        let c = cfg();
        let mut e = EimEngine::new(&g, c, device(), ScanStrategy::ThreadPerSet).unwrap();
        let r = run_imm(&mut e, &c).unwrap();
        assert_eq!(r.seeds.len(), 3);
        assert!(r.coverage > 0.0);
        assert!(e.elapsed_us() > 0.0);
        let fp = e.footprint();
        assert!(fp.store_bytes > 0);
        assert!(fp.peak_bytes >= fp.graph_bytes);
    }

    #[test]
    fn matches_cpu_engine_seed_quality() {
        // eIM and the CPU reference sample from the same distribution and
        // run the same greedy; on a graph with a dominant hub both must
        // put the hub first.
        let g = generators::star_out(300, WeightModel::WeightedCascade);
        let c = cfg().with_source_elimination(false);
        let mut e = EimEngine::new(&g, c, device(), ScanStrategy::ThreadPerSet).unwrap();
        let r = run_imm(&mut e, &c).unwrap();
        assert_eq!(r.seeds[0], 0);
    }

    #[test]
    fn deterministic_end_to_end() {
        let g = generators::rmat(
            250,
            1_500,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            7,
        );
        let c = cfg();
        let run = || {
            let mut e = EimEngine::new(&g, c, device(), ScanStrategy::ThreadPerSet).unwrap();
            let r = run_imm(&mut e, &c).unwrap();
            (r.seeds.clone(), r.num_sets, e.elapsed_us(), e.counters())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn graph_too_big_for_device_is_oom_at_construction() {
        let g = generators::rmat(
            2_000,
            20_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            7,
        );
        let tiny = Device::new(DeviceSpec::rtx_a6000_with_mem(16 << 10));
        let err = EimEngine::new(&g, cfg(), tiny, ScanStrategy::ThreadPerSet)
            .err()
            .expect("graph cannot fit");
        assert!(matches!(err, EngineError::OutOfMemory { .. }));
    }

    #[test]
    fn store_growth_can_oom_mid_run() {
        let g = generators::rmat(
            500,
            5_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            7,
        );
        // Enough for graph + scratch but too small for the RRR store at
        // epsilon = 0.2.
        let scratch = ScratchPlan::new(500, 84 * 4).total();
        let budget = scratch + (60 << 10);
        let d = Device::new(DeviceSpec::rtx_a6000_with_mem(budget));
        let c = cfg().with_epsilon(0.1);
        match EimEngine::new(&g, c, d, ScanStrategy::ThreadPerSet) {
            Ok(mut e) => {
                let err = run_imm(&mut e, &c).unwrap_err();
                assert!(matches!(err, EngineError::OutOfMemory { .. }));
            }
            Err(err) => assert!(matches!(err, EngineError::OutOfMemory { .. })),
        }
    }

    #[test]
    fn degrade_mode_finishes_where_abort_ooms_and_seeds_match() {
        use eim_gpusim::RunTrace;
        use eim_imm::{run_imm_recovering, RecoveryPolicy};
        let g = generators::rmat(
            500,
            5_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            7,
        );
        let c = cfg().with_epsilon(0.1);
        // Same budget that makes `store_growth_can_oom_mid_run` fail.
        let scratch = ScratchPlan::new(500, 84 * 4).total();
        let budget = scratch + (60 << 10);
        let tiny = || Device::new(DeviceSpec::rtx_a6000_with_mem(budget));
        let mut abort_engine = EimEngine::new(&g, c, tiny(), ScanStrategy::ThreadPerSet).unwrap();
        let err = run_imm(&mut abort_engine, &c).unwrap_err();
        assert!(matches!(err, EngineError::OutOfMemory { .. }));

        let mut degrade_engine = EimEngine::new(&g, c, tiny(), ScanStrategy::ThreadPerSet).unwrap();
        let degraded = run_imm_recovering(
            &mut degrade_engine,
            &c,
            &RecoveryPolicy::degrade(),
            &RunTrace::disabled(),
        )
        .expect("host spill must rescue the run");
        assert!(degraded.recovery.spill_events > 0, "nothing was spilled");
        assert!(degraded.recovery.spilled_bytes > 0);
        assert!(degraded.recovery.reloaded_bytes > 0, "selection reloads");
        assert!(degraded.recovery.degraded_rounds > 0);

        // Degradation trades time, never answers: a device with ample
        // memory selects the same seeds.
        let mut clean_engine = EimEngine::new(&g, c, device(), ScanStrategy::ThreadPerSet).unwrap();
        let clean = run_imm(&mut clean_engine, &c).unwrap();
        assert_eq!(degraded.seeds, clean.seeds);
        assert_eq!(degraded.num_sets, clean.num_sets);
        // The spilled run pays PCIe round-trips the clean run does not.
        assert!(degrade_engine.elapsed_us() > clean_engine.elapsed_us());
    }

    #[test]
    fn compressed_degrade_spills_delta_pages_and_seeds_match() {
        use eim_gpusim::RunTrace;
        use eim_imm::{run_imm_recovering, RecoveryPolicy};
        let g = generators::rmat(
            500,
            5_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            7,
        );
        // Tight enough that BOTH layouts must spill; the compressed store
        // then ships delta pages where the plain store ships packed ids.
        let scratch = ScratchPlan::new(500, 84 * 4).total();
        let budget = scratch + (30 << 10);
        let run_degrade = |compressed: bool| {
            let c = cfg().with_epsilon(0.1).with_compressed(compressed);
            let d = Device::new(DeviceSpec::rtx_a6000_with_mem(budget));
            let mut e = EimEngine::new(&g, c, d, ScanStrategy::ThreadPerSet).unwrap();
            run_imm_recovering(
                &mut e,
                &c,
                &RecoveryPolicy::degrade(),
                &RunTrace::disabled(),
            )
            .expect("host spill must rescue the run")
        };
        let plain = run_degrade(false);
        let comp = run_degrade(true);
        assert!(plain.recovery.spill_events > 0);
        assert!(
            comp.recovery.spill_events > 0,
            "compressed run never spilled"
        );
        // Spilling and compression are both invisible in the answer.
        assert_eq!(plain.seeds, comp.seeds);
        assert_eq!(plain.num_sets, comp.num_sets);
        // Delta pages move fewer bytes over PCIe than packed-id pages.
        assert!(
            comp.recovery.spilled_bytes < plain.recovery.spilled_bytes,
            "delta {} vs packed {} spilled bytes",
            comp.recovery.spilled_bytes,
            plain.recovery.spilled_bytes
        );
        // And a clean, ample-memory uncompressed run agrees too.
        let c = cfg().with_epsilon(0.1);
        let mut clean = EimEngine::new(&g, c, device(), ScanStrategy::ThreadPerSet).unwrap();
        let r = run_imm(&mut clean, &c).unwrap();
        assert_eq!(r.seeds, comp.seeds);
    }

    #[test]
    fn compressed_select_charges_decode_and_exports_metrics() {
        use eim_gpusim::{MetricsRegistry, RunTrace};
        let g = generators::barabasi_albert(400, 3, WeightModel::WeightedCascade, 2);
        let c = cfg().with_compressed(true);
        let registry = MetricsRegistry::new();
        let trace = RunTrace::disabled().with_metrics(registry.sink().with_engine("eim"));
        let d = Device::with_run_trace(DeviceSpec::rtx_a6000_with_mem(64 << 20), trace);
        let mut e = EimEngine::new(&g, c, d, ScanStrategy::ThreadPerSet).unwrap();
        let r = run_imm(&mut e, &c).unwrap();
        assert_eq!(r.seeds.len(), 3);
        let rendered = registry.render_prometheus();
        for metric in [
            "eim_rrr_decode_cycles",
            "eim_rrr_compressed_bytes",
            "eim_rrr_compression_ratio_pct",
        ] {
            assert!(rendered.contains(metric), "missing {metric}:\n{rendered}");
        }
    }

    #[test]
    fn packed_store_uses_less_device_memory_than_plain() {
        let g = generators::rmat(
            2_000,
            12_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            3,
        );
        let run = |packed: bool| {
            let c = cfg().with_packed(packed);
            let mut e = EimEngine::new(&g, c, device(), ScanStrategy::ThreadPerSet).unwrap();
            run_imm(&mut e, &c).unwrap();
            e.footprint()
        };
        let packed = run(true);
        let plain = run(false);
        assert!(packed.graph_bytes < plain.graph_bytes);
        assert!(packed.store_bytes < plain.store_bytes);
    }

    #[test]
    fn source_elimination_counters_track_singletons() {
        let g = generators::star_in(200, WeightModel::WeightedCascade);
        let c = cfg().with_k(1);
        let mut e = EimEngine::new(&g, c, device(), ScanStrategy::ThreadPerSet).unwrap();
        let _ = run_imm(&mut e, &c).unwrap();
        let counters = e.counters();
        assert!(counters.singletons > 0);
        assert_eq!(counters.discarded, counters.singletons);
        assert!(counters.sampled >= counters.discarded);
    }
}
