//! Kernel-facing graph view: plain or log-encoded CSC.

use eim_bitpack::PackedCsc;
use eim_graph::{Graph, VertexId, Weight};

/// What a sampling kernel needs from the device-resident network data,
/// independent of whether it is log-encoded.
pub trait DeviceGraph: Sync {
    /// Vertex count.
    fn n(&self) -> usize;
    /// In-degree of `v`.
    fn in_degree(&self, v: VertexId) -> usize;
    /// The `i`-th in-neighbor of `v`.
    fn in_neighbor(&self, v: VertexId, i: usize) -> VertexId;
    /// Weight of the `i`-th in-edge of `v`.
    fn in_weight(&self, v: VertexId, i: usize) -> Weight;
    /// Bytes this representation occupies on the device.
    fn device_bytes(&self) -> usize;
}

/// Plain (uncompressed) CSC view — what gIM keeps on the device.
pub struct PlainDeviceGraph<'g> {
    graph: &'g Graph,
}

impl<'g> PlainDeviceGraph<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g Graph) -> Self {
        Self { graph }
    }
}

impl DeviceGraph for PlainDeviceGraph<'_> {
    fn n(&self) -> usize {
        self.graph.num_vertices()
    }
    fn in_degree(&self, v: VertexId) -> usize {
        self.graph.in_degree(v)
    }
    fn in_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        self.graph.in_neighbors(v)[i]
    }
    fn in_weight(&self, v: VertexId, i: usize) -> Weight {
        self.graph.in_weights(v)[i]
    }
    fn device_bytes(&self) -> usize {
        self.graph.csc_bytes()
    }
}

impl DeviceGraph for PackedCsc {
    fn n(&self) -> usize {
        self.num_vertices()
    }
    fn in_degree(&self, v: VertexId) -> usize {
        PackedCsc::in_degree(self, v)
    }
    fn in_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        PackedCsc::in_neighbor(self, v, i)
    }
    fn in_weight(&self, v: VertexId, i: usize) -> Weight {
        PackedCsc::in_weight(self, v, i)
    }
    fn device_bytes(&self) -> usize {
        self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eim_graph::{generators, WeightModel};

    #[test]
    fn plain_and_packed_views_agree() {
        let g = generators::rmat(
            400,
            2_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            3,
        );
        let plain = PlainDeviceGraph::new(&g);
        let packed = PackedCsc::from_graph(&g);
        assert_eq!(plain.n(), packed.n());
        for v in (0..400u32).step_by(7) {
            assert_eq!(plain.in_degree(v), DeviceGraph::in_degree(&packed, v));
            for i in 0..plain.in_degree(v) {
                assert_eq!(
                    plain.in_neighbor(v, i),
                    DeviceGraph::in_neighbor(&packed, v, i)
                );
                assert_eq!(plain.in_weight(v, i), DeviceGraph::in_weight(&packed, v, i));
            }
        }
        assert!(packed.device_bytes() < plain.device_bytes());
    }
}
