//! Kernel-facing graph view: plain or log-encoded CSC.

use eim_bitpack::PackedCsc;
use eim_graph::{Graph, VertexId, Weight};

/// Integer acceptance threshold of an IC edge weight `p`: a uniform draw
/// `u: u32` activates the edge iff `(u >> 8) <= weight_threshold(p)`.
///
/// This is *exactly* the float comparison `r <= p` with
/// `r = (u >> 8) as f32 * 2^-24` (the vendored `Standard` f32 draw): the
/// 24-bit mantissa `m = u >> 8` scales to f32 losslessly, and
/// `p * 2^24` is exact in f64, so `m * 2^-24 <= p  <=>  m <= floor(p * 2^24)`.
/// Precomputing the threshold lets the kernel compare raw keystream words
/// against the CSC weights with no float conversion per edge.
#[inline]
pub fn weight_threshold(p: f32) -> u32 {
    ((p as f64 * 16_777_216.0).floor() as u64).min(u32::MAX as u64) as u32
}

/// Reusable decode buffer for [`DeviceGraph::in_edges`] on representations
/// that cannot hand out slices directly (the log-encoded CSC decodes through
/// it). Lives in the sampler's per-worker launch scratch so no allocation
/// happens mid-traversal.
#[derive(Default)]
pub struct EdgeScratch {
    nbrs: Vec<VertexId>,
    thresholds: Vec<u32>,
}

/// What a sampling kernel needs from the device-resident network data,
/// independent of whether it is log-encoded.
pub trait DeviceGraph: Sync {
    /// Vertex count.
    fn n(&self) -> usize;
    /// In-degree of `v`.
    fn in_degree(&self, v: VertexId) -> usize;
    /// The `i`-th in-neighbor of `v`.
    fn in_neighbor(&self, v: VertexId, i: usize) -> VertexId;
    /// Weight of the `i`-th in-edge of `v`.
    fn in_weight(&self, v: VertexId, i: usize) -> Weight;
    /// Bytes this representation occupies on the device.
    fn device_bytes(&self) -> usize;

    /// `v`'s full in-neighbor list alongside the integer acceptance
    /// thresholds of its edge weights ([`weight_threshold`]) — the chunked
    /// CSC view the fused sampler scans. The default decodes edge by edge
    /// into `scratch`; representations with contiguous storage override it
    /// to return their own slices zero-copy.
    fn in_edges<'a>(
        &'a self,
        v: VertexId,
        scratch: &'a mut EdgeScratch,
    ) -> (&'a [VertexId], &'a [u32]) {
        let d = self.in_degree(v);
        scratch.nbrs.clear();
        scratch.thresholds.clear();
        scratch.nbrs.reserve(d);
        scratch.thresholds.reserve(d);
        for i in 0..d {
            scratch.nbrs.push(self.in_neighbor(v, i));
            scratch
                .thresholds
                .push(weight_threshold(self.in_weight(v, i)));
        }
        (&scratch.nbrs, &scratch.thresholds)
    }
}

/// Plain (uncompressed) CSC view — what gIM keeps on the device.
///
/// Construction precomputes the flat per-edge threshold array mirroring the
/// CSC weight array, so [`DeviceGraph::in_edges`] is zero-copy; engines
/// build the view once per run, amortizing the `O(m)` pass.
pub struct PlainDeviceGraph<'g> {
    graph: &'g Graph,
    /// Exclusive prefix of in-degrees: edge range of `v` in `thresholds`.
    edge_starts: Vec<usize>,
    /// Per-edge acceptance thresholds in CSC order ([`weight_threshold`]).
    thresholds: Vec<u32>,
}

impl<'g> PlainDeviceGraph<'g> {
    /// Wraps a graph, precomputing the edge threshold array.
    pub fn new(graph: &'g Graph) -> Self {
        let n = graph.num_vertices();
        let mut edge_starts = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        edge_starts.push(0);
        for v in 0..n as VertexId {
            acc += graph.in_degree(v);
            edge_starts.push(acc);
        }
        let mut thresholds = Vec::with_capacity(acc);
        for v in 0..n as VertexId {
            thresholds.extend(graph.in_weights(v).iter().map(|&p| weight_threshold(p)));
        }
        Self {
            graph,
            edge_starts,
            thresholds,
        }
    }
}

impl DeviceGraph for PlainDeviceGraph<'_> {
    fn n(&self) -> usize {
        self.graph.num_vertices()
    }
    fn in_degree(&self, v: VertexId) -> usize {
        self.graph.in_degree(v)
    }
    fn in_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        self.graph.in_neighbors(v)[i]
    }
    fn in_weight(&self, v: VertexId, i: usize) -> Weight {
        self.graph.in_weights(v)[i]
    }
    fn device_bytes(&self) -> usize {
        // Thresholds re-encode the weight array (same 4 bytes per edge on
        // device), so the footprint matches the plain CSC layout.
        self.graph.csc_bytes()
    }
    fn in_edges<'a>(
        &'a self,
        v: VertexId,
        _scratch: &'a mut EdgeScratch,
    ) -> (&'a [VertexId], &'a [u32]) {
        let (s, e) = (
            self.edge_starts[v as usize],
            self.edge_starts[v as usize + 1],
        );
        (self.graph.in_neighbors(v), &self.thresholds[s..e])
    }
}

/// Log-encoded CSC view with the same once-per-run host precomputation
/// [`PlainDeviceGraph`] gets: per-edge acceptance thresholds in flat CSC
/// order and unpacked row starts. The device still holds only the packed
/// arrays — thresholds re-encode the weight array at the same 4 bytes per
/// edge the plain view claims, and the row starts mirror the packed
/// offsets — so [`DeviceGraph::device_bytes`] delegates to the packed
/// representation unchanged. What remains per [`DeviceGraph::in_edges`]
/// call is the sequential neighbor decode, the one cost intrinsic to the
/// log-encoded format.
pub struct PackedDeviceGraph {
    csc: PackedCsc,
    /// Exclusive prefix of in-degrees: edge range of `v` in `thresholds`
    /// and in the packed neighbor stream.
    row_starts: Vec<usize>,
    /// Per-edge acceptance thresholds in CSC order ([`weight_threshold`]).
    thresholds: Vec<u32>,
}

impl PackedDeviceGraph {
    /// Wraps a packed CSC, precomputing row starts and edge thresholds.
    pub fn new(csc: PackedCsc) -> Self {
        let n = csc.num_vertices();
        let m = csc.num_edges();
        let mut row_starts = Vec::with_capacity(n + 1);
        let mut thresholds = Vec::with_capacity(m);
        for v in 0..n as VertexId {
            let (start, end) = csc.row_bounds(v);
            row_starts.push(start);
            match csc.plain_weights(start, end) {
                Some(ws) => thresholds.extend(ws.iter().map(|&p| weight_threshold(p))),
                None => {
                    // Derived weights are constant across the row.
                    let d = end - start;
                    let t = weight_threshold(if d == 0 { 0.0 } else { 1.0 / d as Weight });
                    thresholds.resize(thresholds.len() + d, t);
                }
            }
        }
        row_starts.push(m);
        Self {
            csc,
            row_starts,
            thresholds,
        }
    }

    /// The wrapped packed representation.
    pub fn csc(&self) -> &PackedCsc {
        &self.csc
    }
}

impl DeviceGraph for PackedDeviceGraph {
    fn n(&self) -> usize {
        self.csc.num_vertices()
    }
    fn in_degree(&self, v: VertexId) -> usize {
        self.row_starts[v as usize + 1] - self.row_starts[v as usize]
    }
    fn in_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        self.csc.in_neighbor(v, i)
    }
    fn in_weight(&self, v: VertexId, i: usize) -> Weight {
        self.csc.in_weight(v, i)
    }
    fn device_bytes(&self) -> usize {
        self.csc.bytes()
    }
    fn in_edges<'a>(
        &'a self,
        v: VertexId,
        scratch: &'a mut EdgeScratch,
    ) -> (&'a [VertexId], &'a [u32]) {
        let (start, end) = (self.row_starts[v as usize], self.row_starts[v as usize + 1]);
        scratch.nbrs.clear();
        self.csc
            .decode_neighbors_into(start, end, &mut scratch.nbrs);
        (&scratch.nbrs, &self.thresholds[start..end])
    }
}

impl DeviceGraph for PackedCsc {
    fn n(&self) -> usize {
        self.num_vertices()
    }
    fn in_degree(&self, v: VertexId) -> usize {
        PackedCsc::in_degree(self, v)
    }
    fn in_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        PackedCsc::in_neighbor(self, v, i)
    }
    fn in_weight(&self, v: VertexId, i: usize) -> Weight {
        PackedCsc::in_weight(self, v, i)
    }
    fn device_bytes(&self) -> usize {
        self.bytes()
    }
    fn in_edges<'a>(
        &'a self,
        v: VertexId,
        scratch: &'a mut EdgeScratch,
    ) -> (&'a [VertexId], &'a [u32]) {
        // One offset decode per row plus a rolling sequential neighbor
        // decode, instead of the default's per-edge accessors (each of
        // which re-derives the row bounds from the packed offsets).
        let (start, end) = self.row_bounds(v);
        scratch.nbrs.clear();
        scratch.thresholds.clear();
        self.decode_neighbors_into(start, end, &mut scratch.nbrs);
        match self.plain_weights(start, end) {
            Some(ws) => scratch
                .thresholds
                .extend(ws.iter().map(|&p| weight_threshold(p))),
            None => {
                // Derived weights are constant across the row.
                let d = end - start;
                let t = weight_threshold(if d == 0 { 0.0 } else { 1.0 / d as Weight });
                scratch.thresholds.resize(d, t);
            }
        }
        (&scratch.nbrs, &scratch.thresholds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eim_graph::{generators, WeightModel};

    #[test]
    fn plain_and_packed_views_agree() {
        let g = generators::rmat(
            400,
            2_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            3,
        );
        let plain = PlainDeviceGraph::new(&g);
        let packed = PackedCsc::from_graph(&g);
        assert_eq!(plain.n(), packed.n());
        for v in (0..400u32).step_by(7) {
            assert_eq!(plain.in_degree(v), DeviceGraph::in_degree(&packed, v));
            for i in 0..plain.in_degree(v) {
                assert_eq!(
                    plain.in_neighbor(v, i),
                    DeviceGraph::in_neighbor(&packed, v, i)
                );
                assert_eq!(plain.in_weight(v, i), DeviceGraph::in_weight(&packed, v, i));
            }
        }
        assert!(packed.device_bytes() < plain.device_bytes());
    }

    #[test]
    fn in_edges_zero_copy_and_scratch_paths_agree() {
        let g = generators::rmat(
            300,
            1_500,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            9,
        );
        let plain = PlainDeviceGraph::new(&g);
        let packed = PackedCsc::from_graph(&g);
        let derived = PackedCsc::from_graph_derived(&g);
        let mut s1 = EdgeScratch::default();
        let mut s2 = EdgeScratch::default();
        let mut s3 = EdgeScratch::default();
        for v in 0..300u32 {
            let (pn, pt) = plain.in_edges(v, &mut s1);
            let (kn, kt) = packed.in_edges(v, &mut s2);
            assert_eq!(pn, kn);
            assert_eq!(pt, kt);
            assert_eq!(pn.len(), plain.in_degree(v));
            for (i, &t) in pt.iter().enumerate() {
                assert_eq!(t, weight_threshold(plain.in_weight(v, i)));
            }
            // Derived weights (weighted cascade): same neighbors, and each
            // threshold encodes 1/d exactly as the per-edge accessor does.
            let (dn, dt) = derived.in_edges(v, &mut s3);
            assert_eq!(pn, dn);
            for (i, &t) in dt.iter().enumerate() {
                assert_eq!(t, weight_threshold(DeviceGraph::in_weight(&derived, v, i)));
            }
        }
    }

    #[test]
    fn weight_threshold_matches_float_compare_exactly() {
        // The acceptance decision must be bit-identical to the reference
        // float comparison for every 24-bit mantissa.
        for p in [0.0f32, 1e-9, 0.01, 0.25, 1.0 / 3.0, 0.5, 0.999, 1.0] {
            let t = weight_threshold(p);
            for m in (0u32..1 << 24).step_by(3_191).chain([
                t.saturating_sub(1),
                t,
                t.saturating_add(1).min((1 << 24) - 1),
            ]) {
                let r = m as f32 * (1.0 / (1u32 << 24) as f32);
                assert_eq!(r <= p, m <= t, "p={p} m={m}");
            }
        }
    }
}
