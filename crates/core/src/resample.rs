//! Device-side [`Resampler`] for the streaming engine: redraws invalidated
//! RRR samples on the simulated device and refreshes the packed graph rows
//! in place when the host graph mutates.
//!
//! The streaming engine needs pre-elimination footprints, so sampling runs
//! with source elimination off; the stored (post-elimination) content is
//! derived host-side by [`eim_imm::StreamingImmEngine`]. RNG streams are
//! keyed by `(seed, index)`, so the device redraw of an index against the
//! mutated rows is bit-identical to what a cold device run would sample.

use eim_bitpack::PackedCsc;
use eim_diffusion::{sample_rng, DiffusionModel};
use eim_gpusim::Device;
use eim_graph::{Graph, VertexId, Weight};
use eim_imm::{EngineError, Resampler};
use rand::Rng;

use crate::device_graph::PackedDeviceGraph;
use crate::sampler::sample_indices;

/// Transient-fault retry budget before a redraw gives up. Matches the
/// martingale driver's default posture: a fault commits nothing, so a
/// retry resamples the identical indices.
const DEFAULT_MAX_RETRIES: u32 = 3;

/// Streams RRR redraws through the device sampler, keeping a
/// [`PackedDeviceGraph`] synchronized with the mutating host graph via
/// [`PackedCsc::with_updated_rows`] — only the changed rows are re-packed.
pub struct DeviceResampler {
    device: Device,
    graph: PackedDeviceGraph,
    model: DiffusionModel,
    seed: u64,
    max_retries: u32,
}

impl DeviceResampler {
    /// Wraps `device`, packing `graph` for device residence. `model` and
    /// `seed` must match the run config the streaming engine replays.
    pub fn new(device: Device, graph: &Graph, model: DiffusionModel, seed: u64) -> Self {
        Self {
            device,
            graph: PackedDeviceGraph::new(PackedCsc::from_graph(graph)),
            model,
            seed,
            max_retries: DEFAULT_MAX_RETRIES,
        }
    }

    /// Overrides the transient-fault retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// The device driving the redraws.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Resampler for DeviceResampler {
    fn name(&self) -> &'static str {
        "device"
    }

    fn graph_changed(
        &mut self,
        graph: &Graph,
        changed_heads: &[VertexId],
    ) -> Result<(), EngineError> {
        let updates: Vec<(VertexId, Vec<VertexId>, Vec<Weight>)> = changed_heads
            .iter()
            .map(|&v| {
                (
                    v,
                    graph.in_neighbors(v).to_vec(),
                    graph.in_weights(v).to_vec(),
                )
            })
            .collect();
        let csc = self.graph.csc().with_updated_rows(&updates);
        self.graph = PackedDeviceGraph::new(csc);
        Ok(())
    }

    fn sample(
        &mut self,
        graph: &Graph,
        indices: &[u64],
    ) -> Result<Vec<(VertexId, Vec<VertexId>)>, EngineError> {
        let n = graph.num_vertices() as VertexId;
        let mut attempts: u32 = 0;
        let batch = loop {
            // Elimination off: the streaming engine wants the full visited
            // footprint; it derives stored content itself.
            match sample_indices(
                &self.device,
                &self.graph,
                self.model,
                self.seed,
                indices,
                false,
            ) {
                Ok(batch) => break batch,
                Err(fault) => {
                    if attempts >= self.max_retries {
                        return Err(EngineError::RetriesExhausted { fault, attempts });
                    }
                    attempts += 1;
                }
            }
        };
        self.device.advance_clock(batch.stats.elapsed_us);
        Ok(indices
            .iter()
            .enumerate()
            .map(|(j, &idx)| {
                let source: VertexId = sample_rng(self.seed, idx).gen_range(0..n);
                let set = batch
                    .sets
                    .get(j)
                    .expect("elimination off: every sample is kept");
                debug_assert!(set.binary_search(&source).is_ok(), "footprint holds source");
                (source, set.to_vec())
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eim_gpusim::DeviceSpec;
    use eim_graph::{generators, GraphDelta, WeightModel};
    use eim_imm::HostResampler;

    fn device() -> Device {
        Device::new(DeviceSpec::rtx_a6000_with_mem(512 << 20))
    }

    #[test]
    fn device_redraw_matches_host_resampler() {
        let mut g = generators::rmat(
            300,
            1_800,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            3,
        );
        let model = DiffusionModel::IndependentCascade;
        let mut dev = DeviceResampler::new(device(), &g, model, 99);
        let mut host = HostResampler::new(model, 99);
        let indices: Vec<u64> = vec![0, 5, 17, 120, 121, 4096];
        assert_eq!(
            dev.sample(&g, &indices).unwrap(),
            host.sample(&g, &indices).unwrap()
        );

        // Mutate a couple of rows, push the change to the device, and check
        // the redraws still agree with the host oracle on the new graph.
        let victim = (0..g.num_vertices() as VertexId)
            .find(|&v| !g.in_neighbors(v).is_empty())
            .unwrap();
        let delta = GraphDelta {
            inserts: vec![(7, 3), (11, 3), (2, 9)],
            deletes: vec![(g.in_neighbors(victim)[0], victim)],
        };
        let applied = g.apply_delta(&delta, WeightModel::WeightedCascade, 7);
        assert!(!applied.changed_heads.is_empty());
        dev.graph_changed(&g, &applied.changed_heads).unwrap();
        assert_eq!(
            dev.sample(&g, &indices).unwrap(),
            host.sample(&g, &indices).unwrap()
        );
    }
}
