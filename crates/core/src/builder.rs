//! Fluent public API: configure and run eIM in one expression.

use std::sync::Arc;

use eim_diffusion::DiffusionModel;
use eim_gpusim::{Device, DeviceSpec, FaultPlan, FaultSpec, RunTrace};
use eim_graph::{Graph, VertexId};
use eim_imm::{
    run_imm_recovering, EngineError, ImmConfig, PhaseBreakdown, RecoveryPolicy, RecoveryReport,
};

use crate::engine::EimEngine;
use crate::memory::MemoryFootprint;
use crate::sampler::SamplerCounters;
use crate::select::ScanStrategy;

/// Everything an eIM run reports.
#[derive(Clone, Debug)]
pub struct EimResult {
    /// The selected seed set, in selection order.
    pub seeds: Vec<VertexId>,
    /// Fraction of RRR sets the seeds cover.
    pub coverage: f64,
    /// RRR sets held at the end.
    pub num_sets: usize,
    /// The theoretical requirement theta.
    pub theta: usize,
    /// Total elements across stored sets (`|R|`).
    pub total_elements: usize,
    /// Simulated time per phase.
    pub phases: PhaseBreakdown,
    /// Device memory attribution.
    pub memory: MemoryFootprint,
    /// Sampling outcome counters (singletons, discards).
    pub counters: SamplerCounters,
    /// What it took to finish: retries, batch splits, host spills.
    pub recovery: RecoveryReport,
}

impl EimResult {
    /// Total simulated device time, microseconds.
    pub fn sim_time_us(&self) -> f64 {
        self.phases.total_us()
    }

    /// Total simulated device time, seconds.
    pub fn sim_time_s(&self) -> f64 {
        self.sim_time_us() / 1e6
    }

    /// Fraction of sampled sets that contained only their source — the
    /// Figure 5 x-axis.
    pub fn singleton_fraction(&self) -> f64 {
        if self.counters.sampled == 0 {
            0.0
        } else {
            self.counters.singletons as f64 / self.counters.sampled as f64
        }
    }
}

/// Configures and runs eIM.
///
/// ```
/// # use eim_core::EimBuilder;
/// # use eim_graph::{generators, WeightModel};
/// let g = generators::barabasi_albert(200, 3, WeightModel::WeightedCascade, 1);
/// let result = EimBuilder::new(&g).k(3).epsilon(0.35).run().unwrap();
/// assert_eq!(result.seeds.len(), 3);
/// ```
pub struct EimBuilder<'g> {
    graph: &'g Graph,
    config: ImmConfig,
    device: DeviceSpec,
    scan: ScanStrategy,
    trace: RunTrace,
    recovery: RecoveryPolicy,
    faults: Option<FaultSpec>,
}

impl<'g> EimBuilder<'g> {
    /// A builder with the paper's defaults (`k = 50`, `epsilon = 0.05`, IC,
    /// log encoding and source elimination on, A6000-class device,
    /// thread-per-set selection scans).
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            config: ImmConfig::paper_default(),
            device: DeviceSpec::rtx_a6000(),
            scan: ScanStrategy::ThreadPerSet,
            trace: RunTrace::disabled(),
            recovery: RecoveryPolicy::abort(),
            faults: None,
        }
    }

    /// Seed-set size.
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Approximation parameter.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Diffusion model.
    pub fn model(mut self, model: DiffusionModel) -> Self {
        self.config.model = model;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Toggle source-vertex elimination (§3.4).
    pub fn source_elimination(mut self, on: bool) -> Self {
        self.config.source_elimination = on;
        self
    }

    /// Toggle log encoding of network data and RRR sets (§3.1).
    pub fn packed(mut self, on: bool) -> Self {
        self.config.packed = on;
        self
    }

    /// Selection scan strategy (§3.5).
    pub fn scan(mut self, scan: ScanStrategy) -> Self {
        self.scan = scan;
        self
    }

    /// Simulated device to run on.
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Full config override.
    pub fn config(mut self, config: ImmConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach a run-telemetry recorder: kernel launches, memory traffic,
    /// PCIe transfers, and driver phases all land in `trace`.
    pub fn trace(mut self, trace: RunTrace) -> Self {
        self.trace = trace;
        self
    }

    /// How the run responds to injected faults and memory pressure
    /// (default: abort on the first error, today's behavior).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Attach a deterministic fault-injection schedule (see
    /// [`FaultSpec::parse`] for the spec grammar).
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Runs the complete IMM pipeline.
    pub fn run(self) -> Result<EimResult, EngineError> {
        let trace = self.trace.clone();
        let mut device = Device::with_run_trace(self.device, self.trace);
        if let Some(spec) = self.faults {
            if !spec.is_noop() {
                device = device.with_fault_plan(Arc::new(FaultPlan::new(spec)));
            }
        }
        let mut engine = EimEngine::new(self.graph, self.config, device, self.scan)?;
        let imm = run_imm_recovering(&mut engine, &self.config, &self.recovery, &trace)?;
        Ok(EimResult {
            seeds: imm.seeds,
            coverage: imm.coverage,
            num_sets: imm.num_sets,
            theta: imm.theta,
            total_elements: imm.total_elements,
            phases: imm.phases,
            memory: engine.footprint(),
            counters: engine.counters(),
            recovery: imm.recovery,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eim_graph::{generators, WeightModel};

    #[test]
    fn builder_runs_with_defaults_scaled_down() {
        let g = generators::barabasi_albert(300, 3, WeightModel::WeightedCascade, 5);
        let r = EimBuilder::new(&g).k(5).epsilon(0.3).seed(3).run().unwrap();
        assert_eq!(r.seeds.len(), 5);
        assert!(r.sim_time_us() > 0.0);
        assert!(r.num_sets >= r.theta.min(r.num_sets));
        assert!(r.memory.graph_bytes > 0);
    }

    #[test]
    fn lt_model_via_builder() {
        let g = generators::barabasi_albert(300, 3, WeightModel::WeightedCascade, 5);
        let r = EimBuilder::new(&g)
            .k(3)
            .epsilon(0.4)
            .model(DiffusionModel::LinearThreshold)
            .run()
            .unwrap();
        assert_eq!(r.seeds.len(), 3);
    }

    #[test]
    fn singleton_fraction_is_a_fraction() {
        let g = generators::star_in(150, WeightModel::WeightedCascade);
        let r = EimBuilder::new(&g).k(1).epsilon(0.5).run().unwrap();
        assert!(r.singleton_fraction() > 0.5);
        assert!(r.singleton_fraction() <= 1.0);
    }

    #[test]
    fn traced_run_collects_all_event_categories() {
        let g = generators::barabasi_albert(300, 3, WeightModel::WeightedCascade, 5);
        let trace = RunTrace::enabled();
        let r = EimBuilder::new(&g)
            .k(3)
            .epsilon(0.35)
            .trace(trace.clone())
            .run()
            .unwrap();
        let s = trace.summary();
        assert!(s.kernel_launches > 0, "sampling + selection kernels");
        assert!(s.alloc_events > 0, "graph/scratch/store allocations");
        assert!(s.peak_bytes > 0);
        assert!(s.transfer_events > 0, "graph upload");
        let names: Vec<&str> = s.phase_us.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["estimation", "sampling", "selection"]);
        let total: f64 = s.phase_us.iter().map(|(_, us)| us).sum();
        // Phase spans cover the device timeline from after the graph upload
        // to the end of the run.
        assert!(total > 0.0 && total <= r.sim_time_us());
    }

    #[test]
    fn oom_surfaces_as_error() {
        let g = generators::rmat(
            3_000,
            30_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            1,
        );
        let err = EimBuilder::new(&g)
            .k(3)
            .epsilon(0.4)
            .device(eim_gpusim::DeviceSpec::rtx_a6000_with_mem(32 << 10))
            .run()
            .unwrap_err();
        assert!(matches!(err, EngineError::OutOfMemory { .. }));
    }
}
