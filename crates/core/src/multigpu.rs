//! Multi-GPU eIM — the extension the paper's conclusion plans ("extend eIM
//! to support multi-GPU execution to further improve scalability").
//!
//! Design: data-parallel sampling, centralized selection.
//!
//! * The graph (log-encoded) is replicated on every device — it is the
//!   small, read-only operand; RRR storage is what grows.
//! * Sample indices are dealt round-robin across the `D` devices; each
//!   device runs the standard eIM sampling kernel on its share, so the
//!   phase's simulated time is the *max* over devices (they run
//!   concurrently).
//! * Each non-primary device streams its freshly sampled partition to
//!   device 0 over its own interconnect link, double-buffered against the
//!   sampling kernel (every device has a dedicated DMA engine, so copies
//!   overlap compute and each other). A sampling round therefore costs
//!   `max_j max(sample_j, copy_j)`, not `max_j sample_j + copy_total`.
//! * Selection runs on device 0 with the thread-per-set scan; by then the
//!   partitions have already landed there.
//!
//! Determinism is preserved: sample `i` still derives from stream
//! `(seed, i)` no matter which device draws it, so the merged store is the
//! same multiset the single-GPU engine produces — and therefore the same
//! seed set.

use std::sync::Arc;

use eim_bitpack::PackedCsc;
use eim_gpusim::{
    ArgValue, CopyEvent, CopyStream, Device, DeviceSpec, FaultPlan, FaultSpec, RunTrace,
    TransferDirection,
};
use eim_graph::Graph;
use eim_imm::{
    degree_remap, AnyRrrStore, DeviceManifest, EngineError, EngineManifest, Eviction, ImmConfig,
    ImmEngine, RecoveryReport, RrrSets, RrrStoreBuilder, Selection,
};

use crate::device_graph::{PackedDeviceGraph, PlainDeviceGraph};
use crate::memory::ScratchPlan;
use crate::sampler::{sample_batch, SamplerCounters};
use crate::select::{select_on_device, ScanStrategy};
use crate::DeviceGraph;

enum GraphRepr<'g> {
    Plain(PlainDeviceGraph<'g>),
    Packed(PackedDeviceGraph),
}

/// eIM across `D` simulated devices.
///
/// There is no private time accumulator: every device advances its own
/// [`eim_gpusim::SimClock`], staging copies ride per-device [`CopyStream`]s,
/// and the engine's elapsed time is the max over the device clocks.
pub struct MultiGpuEimEngine<'g> {
    devices: Vec<Device>,
    /// One DMA engine per device: the replicated graph upload and the
    /// partition staging copies queue here.
    streams: Vec<CopyStream>,
    /// Pending per-device graph uploads; each device's first sampling round
    /// waits on its own.
    uploads: Vec<Option<CopyEvent>>,
    graph: GraphRepr<'g>,
    config: ImmConfig,
    store: AnyRrrStore,
    /// Bytes of store content each device holds before the gather.
    partition_bytes: Vec<usize>,
    /// Which partitions have already been gathered to device 0.
    gathered_bytes: usize,
    next_index: u64,
    counters: SamplerCounters,
    store_alloc_bytes: usize,
    /// Original ordinal of each live device slot — eviction compacts the
    /// device vectors, so slot index and construction-time ordinal diverge
    /// once a device dies.
    ordinals: Vec<u64>,
    /// Per-original-device recovery accounting, indexed by ordinal; evicted
    /// devices keep their entry (that is where their eviction is counted).
    device_reports: Vec<RecoveryReport>,
}

/// Per-device recovery view of a multi-GPU run, for telemetry breakdowns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceRecoverySummary {
    /// The device's construction-time ordinal.
    pub ordinal: u64,
    /// Whether the device was evicted after a fail-stop fault.
    pub evicted: bool,
    /// The device's simulated clock (0 once evicted).
    pub clock_us: f64,
    /// Recovery actions attributed to this device.
    pub report: RecoveryReport,
}

impl<'g> MultiGpuEimEngine<'g> {
    /// Builds the engine over `num_devices` identical devices of `spec`
    /// (telemetry disabled, copy overlap on).
    pub fn new(
        graph: &'g Graph,
        config: ImmConfig,
        spec: DeviceSpec,
        num_devices: usize,
    ) -> Result<Self, EngineError> {
        Self::with_telemetry(
            graph,
            config,
            spec,
            num_devices,
            &RunTrace::disabled(),
            true,
        )
    }

    /// Builds the engine with full control: device `j` reports into
    /// `trace.for_device(j)` — one Perfetto process group per GPU — and
    /// `copy_overlap` selects overlapping (the default) or forced-serial
    /// copy streams on every device.
    pub fn with_telemetry(
        graph: &'g Graph,
        config: ImmConfig,
        spec: DeviceSpec,
        num_devices: usize,
        trace: &RunTrace,
        copy_overlap: bool,
    ) -> Result<Self, EngineError> {
        assert!(num_devices >= 1, "need at least one device");
        let n = graph.num_vertices();
        config.validate(n);
        let repr = if config.packed {
            GraphRepr::Packed(PackedDeviceGraph::new(PackedCsc::from_graph(graph)))
        } else {
            GraphRepr::Plain(PlainDeviceGraph::new(graph))
        };
        let graph_bytes = match &repr {
            GraphRepr::Plain(g) => g.device_bytes(),
            GraphRepr::Packed(g) => DeviceGraph::device_bytes(g),
        };
        let devices: Vec<Device> = (0..num_devices)
            .map(|j| {
                Device::with_run_trace(spec, trace.for_device(j as u64))
                    .with_copy_overlap(copy_overlap)
            })
            .collect();
        let scratch = ScratchPlan::new(n, spec.num_sms * 4);
        for d in &devices {
            d.memory()
                .alloc(graph_bytes + scratch.total())
                .map_err(EngineError::from)?;
        }
        // Replicate the graph: every device uploads its own copy on its own
        // copy stream, all in flight concurrently; each device's first
        // sampling round hides behind its upload.
        let mut streams: Vec<CopyStream> = devices.iter().map(|d| d.copy_stream()).collect();
        let uploads: Vec<Option<CopyEvent>> = devices
            .iter()
            .zip(streams.iter_mut())
            .map(|(d, s)| Some(s.enqueue(d, graph_bytes, TransferDirection::HostToDevice)))
            .collect();
        Ok(Self {
            devices,
            streams,
            uploads,
            graph: repr,
            store: if config.compressed {
                AnyRrrStore::compressed(n, degree_remap(graph))
            } else {
                AnyRrrStore::new(n, config.packed)
            },
            config,
            partition_bytes: vec![0; num_devices],
            gathered_bytes: 0,
            next_index: 0,
            counters: SamplerCounters::default(),
            store_alloc_bytes: 0,
            ordinals: (0..num_devices as u64).collect(),
            device_reports: vec![RecoveryReport::default(); num_devices],
        })
    }

    /// Attaches a deterministic fault plan. Device `j` runs an independent
    /// but still deterministic schedule derived from `spec`
    /// ([`FaultSpec::derive`] with the device index as salt).
    pub fn with_faults(mut self, spec: &FaultSpec) -> Self {
        let devices = std::mem::take(&mut self.devices);
        self.devices = devices
            .into_iter()
            .enumerate()
            .map(|(j, d)| d.with_fault_plan(Arc::new(FaultPlan::new(spec.derive(j as u64)))))
            .collect();
        self
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Current simulated time on each device's own clock, in µs. After a
    /// sampling round these agree (bulk-synchronous barrier); selection
    /// advances only device 0.
    pub fn device_clocks_us(&self) -> Vec<f64> {
        self.devices.iter().map(|d| d.clock().now_us()).collect()
    }

    /// Sampling counters.
    pub fn counters(&self) -> SamplerCounters {
        self.counters
    }

    /// Per-device recovery breakdown, one entry per construction-time
    /// ordinal (evicted devices included).
    pub fn device_summaries(&self) -> Vec<DeviceRecoverySummary> {
        (0..self.device_reports.len() as u64)
            .map(|ordinal| {
                let slot = self.ordinals.iter().position(|&o| o == ordinal);
                DeviceRecoverySummary {
                    ordinal,
                    evicted: slot.is_none(),
                    clock_us: slot.map_or(0.0, |s| self.devices[s].clock_us()),
                    report: self.device_reports[ordinal as usize],
                }
            })
            .collect()
    }

    fn grow_primary_store(&mut self) -> Result<(), EngineError> {
        let needed = self.store.bytes();
        if needed <= self.store_alloc_bytes {
            return Ok(());
        }
        let new_alloc = (needed * 3 / 2).max(4096);
        self.devices[0]
            .memory()
            .alloc(new_alloc)
            .map_err(EngineError::from)?;
        self.devices[0].memory().free(self.store_alloc_bytes);
        self.store_alloc_bytes = new_alloc;
        Ok(())
    }

    /// One sampling round over all devices. On a fault this returns early
    /// with per-device accounting partially committed — the caller rolls
    /// that back (the store and `next_index` are only touched on success).
    fn sample_round(&mut self, target: usize) -> Result<(), EngineError> {
        let total = target - self.next_index as usize;
        let d = self.devices.len();
        // Blocked dealing: device j samples the contiguous global range
        // [next + sum of earlier shares, +share_j). Content depends only on
        // the global index, so the merged multiset is identical to the
        // single-device engine's — same seeds, scalability for free.
        let mut batches = Vec::with_capacity(d);
        let mut base = self.next_index;
        for (j, dev) in self.devices.iter().enumerate() {
            let share = total / d + usize::from(j < total % d);
            if share == 0 {
                continue;
            }
            let partition_before = self.partition_bytes[j];
            let batch = match &self.graph {
                GraphRepr::Plain(g) => sample_batch(
                    dev,
                    g,
                    self.config.model,
                    self.config.seed,
                    base,
                    share,
                    self.config.source_elimination,
                )?,
                GraphRepr::Packed(g) => sample_batch(
                    dev,
                    g,
                    self.config.model,
                    self.config.seed,
                    base,
                    share,
                    self.config.source_elimination,
                )?,
            };
            self.counters.sampled += batch.counters.sampled;
            self.counters.singletons += batch.counters.singletons;
            self.counters.discarded += batch.counters.discarded;
            for len in batch.sets.kept_lens() {
                self.partition_bytes[j] += len * 4 + 8;
            }
            // Non-primary devices stage this round's partition to device 0
            // on their own DMA engine, double-buffered against the sampling
            // kernel: the device is done when both finish.
            let staging = if j == 0 {
                None
            } else {
                let staged = self.partition_bytes[j] - partition_before;
                let ev = self.streams[j].checked_enqueue(
                    dev,
                    staged,
                    TransferDirection::DeviceToHost,
                )?;
                self.gathered_bytes += staged;
                Some(ev)
            };
            dev.advance_clock(batch.stats.elapsed_us);
            if let Some(upload) = self.uploads[j].take() {
                self.streams[j].wait_event(dev, &upload);
            }
            if let Some(ev) = staging {
                self.streams[j].wait_event(dev, &ev);
            }
            batches.push((batch.sets, batch.coverage));
            base += share as u64;
        }
        self.next_index = target as u64;
        // Devices ran concurrently; the round is bulk-synchronous, so align
        // every clock to the slowest device before the next round deals.
        let round_end = self
            .devices
            .iter()
            .map(|dev| dev.clock().now_us())
            .fold(0.0, f64::max);
        // Barrier skew — how long the fastest device idles waiting for the
        // slowest — is the visible cost of a straggler window; export the
        // worst round as a high-water gauge.
        let round_min = self
            .devices
            .iter()
            .map(|dev| dev.clock().now_us())
            .fold(f64::INFINITY, f64::min);
        if round_end > round_min {
            self.devices[0]
                .run_trace()
                .metrics()
                .gauge_max("eim_round_skew_us", (round_end - round_min).round() as u64);
        }
        for dev in &self.devices {
            dev.clock().advance_to(round_end);
        }
        // Devices own contiguous ascending index ranges and each batch is
        // already in sample-index order, so appending batch-by-batch IS the
        // global-index merge order — no sort, no per-set reallocation. Each
        // batch lands in bulk with its in-flight coverage histogram.
        for (sets, coverage) in &batches {
            let lens: Vec<usize> = sets.kept_lens().collect();
            self.store.append_batch(sets.arena(), &lens, coverage);
        }
        Ok(())
    }
}

impl ImmEngine for MultiGpuEimEngine<'_> {
    fn n(&self) -> usize {
        self.store.num_vertices()
    }

    fn extend_to(&mut self, target: usize) -> Result<(), EngineError> {
        // Heal first: a prior round may have committed sets and then OOMed
        // growing the primary store; a retry must fix that deficit even
        // when the sample target itself is already met.
        self.grow_primary_store()?;
        if (self.next_index as usize) >= target {
            return Ok(());
        }
        let counters_before = self.counters;
        let partitions_before = self.partition_bytes.clone();
        let gathered_before = self.gathered_bytes;
        match self.sample_round(target) {
            Ok(()) => self.grow_primary_store(),
            Err(e) => {
                // A faulted launch or staging copy aborts the whole round:
                // restore the per-device accounting so the retry (which
                // re-deals the identical index ranges) commits exactly once.
                self.counters = counters_before;
                self.partition_bytes = partitions_before;
                self.gathered_bytes = gathered_before;
                Err(e)
            }
        }
    }

    fn select(&mut self, k: usize) -> Selection {
        // A run that never sampled still owes every device its graph upload.
        for (j, dev) in self.devices.iter().enumerate() {
            if let Some(upload) = self.uploads[j].take() {
                self.streams[j].wait_event(dev, &upload);
            }
        }
        // The eager per-round staging normally leaves nothing to gather;
        // this drains any remainder onto device 0 before the scan.
        let to_gather: usize =
            self.partition_bytes[1..].iter().sum::<usize>() - self.gathered_bytes;
        if to_gather > 0 {
            let ev = self.streams[0].enqueue(
                &self.devices[0],
                to_gather,
                TransferDirection::HostToDevice,
            );
            self.streams[0].wait_event(&self.devices[0], &ev);
            self.gathered_bytes += to_gather;
        }
        let result = select_on_device(&self.devices[0], &self.store, k, ScanStrategy::ThreadPerSet);
        // `select_on_device` models its launches analytically; record the
        // kernel work on device 0's lane, one event per greedy iteration.
        let mut ts = self.devices[0].advance_clock(result.elapsed_us);
        for (i, iter) in result.iterations.iter().enumerate() {
            self.devices[0].run_trace().record_kernel_hw(
                &format!("eim_select:iter{i}"),
                ts,
                iter.elapsed_us,
                iter.launches as usize,
                iter.cycles,
                0,
                &iter.hw,
            );
            ts += iter.elapsed_us;
        }
        result.selection
    }

    fn store(&self) -> &dyn RrrSets {
        &self.store
    }

    fn logical_sets(&self) -> usize {
        self.next_index as usize
    }

    fn elapsed_us(&self) -> f64 {
        self.devices
            .iter()
            .map(|dev| dev.clock().now_us())
            .fold(0.0, f64::max)
    }

    fn advance_time(&mut self, us: f64) {
        // Host-side time passes for every device equally, keeping the
        // bulk-synchronous clocks aligned.
        for dev in &self.devices {
            dev.advance_clock(us);
        }
    }

    fn recovery_report(&self) -> RecoveryReport {
        let mut merged = RecoveryReport::default();
        for r in &self.device_reports {
            merged.merge(r);
        }
        merged
    }

    fn evict_lost_devices(&mut self) -> Result<Option<Eviction>, EngineError> {
        let lost: Vec<usize> = (0..self.devices.len())
            .filter(|&j| self.devices[j].is_lost())
            .collect();
        if lost.is_empty() || lost.len() == self.devices.len() {
            return Ok(None);
        }
        let primary_lost = lost[0] == 0;
        for &j in lost.iter().rev() {
            let ordinal = self.ordinals[j];
            let dev = &self.devices[j];
            self.device_reports[ordinal as usize].devices_evicted += 1;
            dev.run_trace().record_recovery(
                "recover:evict_device",
                dev.clock_us(),
                vec![
                    ("ordinal", ArgValue::U64(ordinal)),
                    (
                        "dead_at_event",
                        ArgValue::U64(dev.fault_plan().and_then(|p| p.dead_at()).unwrap_or(0)),
                    ),
                ],
            );
            dev.run_trace()
                .metrics()
                .counter_add("eim_device_failures_total", &[], 1);
            // A non-primary casualty's committed partition was already
            // eagerly staged to the primary each round, so no data is lost —
            // only the gather accounting must forget it.
            if j > 0 {
                self.gathered_bytes -= self.partition_bytes[j];
            }
            self.devices.remove(j);
            self.streams.remove(j);
            self.uploads.remove(j);
            self.partition_bytes.remove(j);
            self.ordinals.remove(j);
        }
        if primary_lost {
            // Promote the first survivor to primary: it must own the
            // gathered store, so reserve the store arena there and re-upload
            // the host mirror's content over its copy stream — the
            // re-shard's PCIe bill, paid on the simulated clock.
            self.devices[0]
                .memory()
                .alloc(self.store_alloc_bytes)
                .map_err(EngineError::from)?;
            if let Some(upload) = self.uploads[0].take() {
                self.streams[0].wait_event(&self.devices[0], &upload);
            }
            let bytes = self.store.bytes();
            if bytes > 0 {
                let ev = self.streams[0].enqueue(
                    &self.devices[0],
                    bytes,
                    TransferDirection::HostToDevice,
                );
                self.streams[0].wait_event(&self.devices[0], &ev);
            }
            // Everything now lives on the new primary; future rounds
            // accumulate fresh partitions on the survivors.
            for b in &mut self.partition_bytes {
                *b = 0;
            }
            self.gathered_bytes = 0;
        }
        // Eviction is a barrier: survivors leave it clock-aligned, so the
        // next sampling round deals onto a consistent timeline.
        let end = self
            .devices
            .iter()
            .map(|dev| dev.clock().now_us())
            .fold(0.0, f64::max);
        for dev in &self.devices {
            dev.clock().advance_to(end);
        }
        Ok(Some(Eviction {
            devices_evicted: lost.len() as u32,
            survivors: self.devices.len(),
        }))
    }

    fn checkpoint_manifest(&self) -> EngineManifest {
        let devices = (0..self.device_reports.len() as u64)
            .map(
                |ordinal| match self.ordinals.iter().position(|&o| o == ordinal) {
                    Some(slot) => DeviceManifest {
                        ordinal,
                        clock_us: self.devices[slot].clock_us(),
                        evicted: false,
                        partition_bytes: self.partition_bytes[slot],
                    },
                    None => DeviceManifest {
                        ordinal,
                        clock_us: 0.0,
                        evicted: true,
                        partition_bytes: 0,
                    },
                },
            )
            .collect();
        EngineManifest {
            devices,
            gathered_bytes: self.gathered_bytes,
            store_alloc_bytes: self.store_alloc_bytes,
        }
    }

    fn restore_manifest(&mut self, m: &EngineManifest) -> Result<(), EngineError> {
        if m.devices.is_empty() {
            return Ok(());
        }
        // Restore runs on a freshly built engine: every original device is
        // still present, so the manifest must describe the same topology.
        if m.devices.len() != self.devices.len() {
            return Err(EngineError::CheckpointMismatch {
                expected: self.devices.len() as u64,
                found: m.devices.len() as u64,
            });
        }
        // The replay already waited out some uploads; drain the rest so the
        // pinned clocks below are final.
        for (j, dev) in self.devices.iter().enumerate() {
            if let Some(upload) = self.uploads[j].take() {
                self.streams[j].wait_event(dev, &upload);
            }
        }
        // Reproduce the checkpointed eviction topology without re-paying the
        // re-shard: the checkpointed run already charged it, and the clocks
        // we pin below carry that cost.
        let primary_evicted = m.devices[0].evicted;
        for ordinal in (0..m.devices.len()).rev() {
            if m.devices[ordinal].evicted {
                self.devices.remove(ordinal);
                self.streams.remove(ordinal);
                self.uploads.remove(ordinal);
                self.partition_bytes.remove(ordinal);
                self.ordinals.remove(ordinal);
            }
        }
        if self.devices.is_empty() {
            return Err(EngineError::CheckpointMismatch {
                expected: 1,
                found: 0,
            });
        }
        // Pin the primary store allocation. The replay grew it on the
        // original device 0; if that device was evicted its memory went with
        // it, and the surviving primary reserves the manifest's allocation.
        if primary_evicted {
            self.devices[0]
                .memory()
                .alloc(m.store_alloc_bytes)
                .map_err(EngineError::from)?;
        } else {
            self.devices[0].memory().free(self.store_alloc_bytes);
            self.devices[0]
                .memory()
                .alloc(m.store_alloc_bytes)
                .map_err(EngineError::from)?;
        }
        self.store_alloc_bytes = m.store_alloc_bytes;
        for (slot, &ordinal) in self.ordinals.iter().enumerate() {
            let dm = &m.devices[ordinal as usize];
            self.partition_bytes[slot] = dm.partition_bytes;
            self.devices[slot].clock().set_us(dm.clock_us);
        }
        self.gathered_bytes = m.gathered_bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eim_graph::{generators, WeightModel};
    use eim_imm::run_imm;

    fn cfg() -> ImmConfig {
        ImmConfig::paper_default()
            .with_k(4)
            .with_epsilon(0.25)
            .with_seed(13)
    }

    fn graph() -> Graph {
        generators::rmat(
            600,
            3_600,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            21,
        )
    }

    #[test]
    fn same_seeds_as_single_device() {
        let g = graph();
        let c = cfg();
        let spec = DeviceSpec::rtx_a6000_with_mem(256 << 20);
        let mut multi = MultiGpuEimEngine::new(&g, c, spec, 4).unwrap();
        let r_multi = run_imm(&mut multi, &c).unwrap();
        let r_single = crate::EimBuilder::new(&g)
            .config(c)
            .device(spec)
            .run()
            .unwrap();
        assert_eq!(r_multi.seeds, r_single.seeds);
        assert_eq!(r_multi.num_sets, r_single.num_sets);
        assert_eq!(r_multi.total_elements, r_single.total_elements);
    }

    #[test]
    fn sampling_phase_scales_with_devices() {
        // Pure sampling (the data-parallel phase) must scale near-linearly;
        // end-to-end gains are Amdahl-limited by the centralized selection.
        let g = generators::rmat(
            1_500,
            9_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            5,
        );
        let c = cfg();
        let spec = DeviceSpec::rtx_a6000_with_mem(512 << 20);
        let time = |d: usize| {
            let mut e = MultiGpuEimEngine::new(&g, c, spec, d).unwrap();
            e.extend_to(40_000).unwrap();
            e.elapsed_us()
        };
        let one = time(1);
        let four = time(4);
        assert!(
            four < 0.45 * one,
            "4 devices {four:.0} us vs 1 device {one:.0} us"
        );
    }

    #[test]
    fn end_to_end_never_slower_with_more_devices() {
        let g = graph();
        let c = cfg();
        let spec = DeviceSpec::rtx_a6000_with_mem(512 << 20);
        let time = |d: usize| {
            let mut e = MultiGpuEimEngine::new(&g, c, spec, d).unwrap();
            run_imm(&mut e, &c).unwrap();
            e.elapsed_us()
        };
        let one = time(1);
        let four = time(4);
        assert!(
            four < 1.02 * one,
            "4 devices {four:.0} vs 1 device {one:.0}"
        );
    }

    #[test]
    fn one_device_matches_the_standard_engine_times_closely() {
        let g = graph();
        let c = cfg();
        let spec = DeviceSpec::rtx_a6000_with_mem(256 << 20);
        let mut multi = MultiGpuEimEngine::new(&g, c, spec, 1).unwrap();
        let r = run_imm(&mut multi, &c).unwrap();
        assert_eq!(r.seeds.len(), 4);
        assert_eq!(multi.num_devices(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = graph();
        let c = cfg();
        let spec = DeviceSpec::rtx_a6000_with_mem(256 << 20);
        let run = || {
            let mut e = MultiGpuEimEngine::new(&g, c, spec, 3).unwrap();
            let r = run_imm(&mut e, &c).unwrap();
            (r.seeds.clone(), r.num_sets, e.elapsed_us())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn graph_must_fit_every_device() {
        let g = graph();
        let err = MultiGpuEimEngine::new(&g, cfg(), DeviceSpec::rtx_a6000_with_mem(16 << 10), 2)
            .err()
            .expect("tiny devices cannot hold the graph");
        assert!(matches!(err, EngineError::OutOfMemory { .. }));
    }

    // ---- device loss, eviction, and re-sharding ----

    use eim_imm::{run_imm_recovering, RecoveryPolicy};

    fn clean_reference(g: &Graph, c: &ImmConfig) -> (Vec<u32>, usize) {
        let spec = DeviceSpec::rtx_a6000_with_mem(256 << 20);
        let mut e = MultiGpuEimEngine::new(g, *c, spec, 4).unwrap();
        let r = run_imm(&mut e, c).unwrap();
        (r.seeds, r.num_sets)
    }

    /// Runs a faulted 4-device recovery and returns
    /// `(seeds, num_sets, devices_evicted, redistributed_sets)`,
    /// or `None` when the plan killed every device (retries exhausted).
    fn faulted_run(
        g: &Graph,
        c: &ImmConfig,
        fault_spec: &str,
    ) -> Option<(Vec<u32>, usize, u32, u64)> {
        let spec = DeviceSpec::rtx_a6000_with_mem(256 << 20);
        let mut e = MultiGpuEimEngine::new(g, *c, spec, 4)
            .unwrap()
            .with_faults(&FaultSpec::parse(fault_spec).unwrap());
        match run_imm_recovering(&mut e, c, &RecoveryPolicy::retry(), &RunTrace::disabled()) {
            Ok(r) => Some((
                r.seeds,
                r.num_sets,
                r.recovery.devices_evicted,
                r.recovery.redistributed_sets,
            )),
            Err(EngineError::RetriesExhausted { .. }) => None,
            Err(e) => panic!("unexpected engine error: {e}"),
        }
    }

    #[test]
    fn losing_devices_mid_run_preserves_the_answer_exactly() {
        // Sweep deterministic fault seeds until the derived plans have
        // killed one device in some run and two-or-more in another. Every
        // surviving run must return the clean run's answer byte for byte.
        let g = graph();
        let c = cfg();
        let (clean_seeds, clean_sets) = clean_reference(&g, &c);
        let (mut saw_single_loss, mut saw_multi_loss) = (false, false);
        for fault_seed in 1..40 {
            let spec = format!("seed={fault_seed},device_fail=0.02");
            let Some((seeds, sets, evicted, redistributed)) = faulted_run(&g, &c, &spec) else {
                continue; // all four died: correct typed failure, nothing to compare
            };
            assert_eq!(seeds, clean_seeds, "{spec} changed the seed set");
            assert_eq!(sets, clean_sets, "{spec} changed the sample count");
            if evicted > 0 {
                assert!(
                    redistributed > 0,
                    "{spec}: eviction re-sharded no pending sets"
                );
            }
            saw_single_loss |= evicted == 1;
            saw_multi_loss |= evicted >= 2;
            if saw_single_loss && saw_multi_loss {
                return;
            }
        }
        panic!(
            "fault-seed sweep never produced both a 1-loss and a 2+-loss run \
             (single={saw_single_loss}, multi={saw_multi_loss})"
        );
    }

    #[test]
    fn losing_the_primary_device_preserves_the_answer_exactly() {
        // Force device 0 (the gather/selection primary) dead on its first
        // kernel launch: the promotion path must re-upload the store onto
        // the new primary and still reproduce the clean answer.
        let g = graph();
        let c = cfg();
        let (clean_seeds, clean_sets) = clean_reference(&g, &c);
        let spec = DeviceSpec::rtx_a6000_with_mem(256 << 20);
        let mut e = MultiGpuEimEngine::new(&g, c, spec, 4).unwrap();
        let kill_primary = FaultSpec::parse("seed=1,device_fail=0.999").unwrap();
        let devices = std::mem::take(&mut e.devices);
        e.devices = devices
            .into_iter()
            .enumerate()
            .map(|(j, d)| {
                if j == 0 {
                    d.with_fault_plan(Arc::new(FaultPlan::new(kill_primary.clone())))
                } else {
                    d
                }
            })
            .collect();
        let r = run_imm_recovering(&mut e, &c, &RecoveryPolicy::retry(), &RunTrace::disabled())
            .expect("survivors absorb the primary loss");
        assert_eq!(r.recovery.devices_evicted, 1);
        assert_eq!(e.num_devices(), 3);
        assert_eq!(r.seeds, clean_seeds);
        assert_eq!(r.num_sets, clean_sets);
        let summaries = e.device_summaries();
        assert!(summaries[0].evicted, "ordinal 0 should be marked evicted");
        assert_eq!(summaries[0].report.devices_evicted, 1);
        assert!(summaries[1..].iter().all(|s| !s.evicted));
    }

    #[test]
    fn straggler_skews_the_clock_but_not_the_answer() {
        let g = graph();
        let c = cfg();
        let (clean_seeds, clean_sets) = clean_reference(&g, &c);
        let spec = DeviceSpec::rtx_a6000_with_mem(256 << 20);
        let clean_time = {
            let mut e = MultiGpuEimEngine::new(&g, c, spec, 4).unwrap();
            run_imm(&mut e, &c).unwrap();
            e.elapsed_us()
        };
        let mut e = MultiGpuEimEngine::new(&g, c, spec, 4)
            .unwrap()
            .with_faults(&FaultSpec::parse("seed=5,straggler=8.0@0:64").unwrap());
        let r = run_imm_recovering(&mut e, &c, &RecoveryPolicy::retry(), &RunTrace::disabled())
            .expect("a straggler is a slowdown, not a fault");
        assert_eq!(r.seeds, clean_seeds, "straggler changed the answer");
        assert_eq!(r.num_sets, clean_sets);
        assert!(
            e.elapsed_us() > clean_time,
            "an 8x straggler window must cost simulated time \
             ({} vs clean {})",
            e.elapsed_us(),
            clean_time
        );
    }

    #[test]
    fn manifest_restores_clocks_and_partitions_onto_a_fresh_engine() {
        let g = graph();
        let c = cfg();
        let spec = DeviceSpec::rtx_a6000_with_mem(256 << 20);
        let mut a = MultiGpuEimEngine::new(&g, c, spec, 3).unwrap();
        a.extend_to(4_000).unwrap();
        let manifest = a.checkpoint_manifest();
        assert_eq!(manifest.devices.len(), 3);

        let mut b = MultiGpuEimEngine::new(&g, c, spec, 3).unwrap();
        b.extend_to(4_000).unwrap(); // replay the same samples
        b.restore_manifest(&manifest).unwrap();
        assert_eq!(b.device_clocks_us(), a.device_clocks_us());
        assert_eq!(b.checkpoint_manifest(), manifest);

        // Both engines must finish the run identically from here.
        let ra = run_imm(&mut a, &c).unwrap();
        let rb = run_imm(&mut b, &c).unwrap();
        assert_eq!(ra.seeds, rb.seeds);
        assert_eq!(ra.num_sets, rb.num_sets);
        assert_eq!(a.elapsed_us().to_bits(), b.elapsed_us().to_bits());
    }

    #[test]
    fn manifest_topology_mismatch_is_a_typed_error() {
        let g = graph();
        let c = cfg();
        let spec = DeviceSpec::rtx_a6000_with_mem(256 << 20);
        let a = MultiGpuEimEngine::new(&g, c, spec, 2).unwrap();
        let manifest = a.checkpoint_manifest();
        let mut b = MultiGpuEimEngine::new(&g, c, spec, 4).unwrap();
        assert!(matches!(
            b.restore_manifest(&manifest),
            Err(EngineError::CheckpointMismatch { .. })
        ));
    }
}
