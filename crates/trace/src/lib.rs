//! Run telemetry for the eIM workspace.
//!
//! One [`RunTrace`] recorder is shared (cheaply, via `Arc`) between the
//! simulated device, its memory tracker, the PCIe transfer model, and the
//! IMM driver. Everything that happens on the simulated timeline lands in a
//! single event stream:
//!
//! - **phase spans** — the IMM driver's estimation / sampling / selection
//!   phases,
//! - **kernel events** — every simulated kernel launch with its block count,
//!   simulated cycle totals, and per-SM makespan,
//! - **memory events** — device allocations and frees with the running
//!   in-use counter (rendered as a Perfetto counter track),
//! - **transfer events** — PCIe host↔device copies with byte counts.
//!
//! The stream exports as Chrome trace-event JSON ([`RunTrace::chrome_json`]),
//! loadable in Perfetto / `chrome://tracing`, and condenses to a
//! [`TraceSummary`] for machine-readable CLI output.
//!
//! A disabled recorder ([`RunTrace::disabled`]) holds no buffer and every
//! `record_*` call is a branch on a `None` — no allocation, no locking — so
//! the hot sampling loop pays nothing when tracing is off.

#![warn(missing_docs)]

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::{json, Value};

pub use eim_metrics::{
    provenance, write_metrics_file, KernelHw, KernelProfile, MetricsRegistry, MetricsSink,
    ProfileKey, SnapshotAccumulator, SnapshotStreamWriter, SNAPSHOT_SCHEMA, UTILIZATION_BUCKETS,
};

/// Simulated-time clock, in microseconds.
///
/// The simulated device owns one of these and shares it with its memory
/// tracker so that every recorded event carries a timestamp on the *device*
/// timeline (not wall time). Stored as `f64` bits in an atomic so kernel
/// blocks running on the thread pool can read it without locking.
#[derive(Debug)]
pub struct SimClock {
    bits: AtomicU64,
}

impl SimClock {
    /// A clock starting at 0 µs.
    pub fn new() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The current simulated time in microseconds.
    pub fn now_us(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Advances the clock by `us` and returns the time *before* the advance
    /// (the natural start timestamp for the event that consumed the time).
    pub fn advance(&self, us: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let now = f64::from_bits(cur);
            let next = (now + us).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return now,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Advances the clock to at least `target_us` — a no-op when the clock
    /// is already past it — and returns the time *before* the advance. This
    /// is the wait primitive of the copy-stream model: a device blocking on
    /// an async copy jumps forward to the copy's completion time, but never
    /// travels backwards.
    pub fn advance_to(&self, target_us: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let now = f64::from_bits(cur);
            if target_us <= now {
                return now;
            }
            match self.bits.compare_exchange_weak(
                cur,
                target_us.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return now,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Resets the clock to 0 µs (between independent runs on one device).
    pub fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }

    /// Pins the clock to an absolute time, forwards *or backwards*. The
    /// checkpoint/restore path uses this to replace replay time with the
    /// persisted device time; live engines should stick to
    /// [`SimClock::advance`] / [`SimClock::advance_to`].
    pub fn set_us(&self, us: f64) {
        self.bits.store(us.to_bits(), Ordering::Relaxed);
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Event category: which subsystem emitted the event. Becomes the Chrome
/// `cat` field and selects the rendering lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventCat {
    /// IMM driver phase (estimation / sampling / selection).
    Phase,
    /// Simulated kernel launch.
    Kernel,
    /// Device-memory allocation or free.
    Memory,
    /// PCIe host↔device transfer.
    Transfer,
    /// Injected fault or recovery action (retry, batch split, host spill).
    Fault,
    /// Async copy enqueued on a device copy stream (the simulated DMA
    /// engine). Shares the `"transfer"` Chrome category with
    /// [`EventCat::Transfer`] — both are PCIe traffic — but renders on its
    /// own lane so overlap with kernel spans is visible.
    CopyStream,
}

impl EventCat {
    /// The Chrome trace `cat` string.
    pub fn as_str(self) -> &'static str {
        match self {
            EventCat::Phase => "phase",
            EventCat::Kernel => "kernel",
            EventCat::Memory => "memory",
            EventCat::Transfer => "transfer",
            EventCat::Fault => "fault",
            EventCat::CopyStream => "transfer",
        }
    }

    /// The synthetic thread id (lane) events of this category render on.
    fn lane(self) -> u64 {
        match self {
            EventCat::Phase => 0,
            EventCat::Kernel => 1,
            EventCat::Memory => 2,
            EventCat::Transfer => 3,
            EventCat::Fault => 4,
            EventCat::CopyStream => 5,
        }
    }

    /// Human name of the rendering lane.
    fn lane_name(self) -> &'static str {
        match self {
            EventCat::Phase => "imm phases",
            EventCat::Kernel => "kernel launches",
            EventCat::Memory => "device memory",
            EventCat::Transfer => "pcie transfers",
            EventCat::Fault => "faults & recovery",
            EventCat::CopyStream => "copy stream",
        }
    }

    /// Every category, in lane order (used when naming trace lanes).
    const ALL: [EventCat; NUM_CATS] = [
        EventCat::Phase,
        EventCat::Kernel,
        EventCat::Memory,
        EventCat::Transfer,
        EventCat::Fault,
        EventCat::CopyStream,
    ];
}

/// How an event occupies the timeline.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A duration event (Chrome `ph: "X"`).
    Span {
        /// Duration in simulated microseconds.
        dur_us: f64,
    },
    /// A point-in-time event (Chrome `ph: "i"`).
    Instant,
    /// A sampled counter value (Chrome `ph: "C"`), e.g. device bytes in use.
    Counter {
        /// The counter's value at this timestamp.
        value: f64,
    },
}

/// One argument attached to an event (lands in Chrome's `args` object).
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
}

impl From<&ArgValue> for Value {
    fn from(v: &ArgValue) -> Value {
        match v {
            ArgValue::U64(x) => Value::from(*x),
            ArgValue::F64(x) => Value::from(*x),
            ArgValue::Str(s) => Value::from(s.as_str()),
        }
    }
}

/// One recorded telemetry event on the simulated timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event label (kernel name, phase name, transfer label, …).
    pub name: String,
    /// Emitting subsystem.
    pub cat: EventCat,
    /// Start timestamp in simulated microseconds.
    pub ts_us: f64,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Perfetto process group: 0 for single-device runs, the device ordinal
    /// for multi-GPU runs (see [`RunTrace::for_device`]).
    pub pid: u64,
    /// Extra key–value detail.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Number of [`EventCat`] variants (per-category cap bookkeeping).
const NUM_CATS: usize = 6;

#[derive(Debug)]
struct Inner {
    events: Mutex<Vec<TraceEvent>>,
    /// Max retained events *per category*; `u64::MAX` when uncapped.
    event_cap: u64,
    /// Retained-event count per category (indexed by [`EventCat::lane`]).
    cat_counts: [AtomicU64; NUM_CATS],
    /// Events discarded per category once its cap filled.
    cat_dropped: [AtomicU64; NUM_CATS],
    kernel_launches: AtomicU64,
    kernel_cycles: AtomicU64,
    alloc_events: AtomicU64,
    free_events: AtomicU64,
    peak_bytes: AtomicU64,
    transfer_events: AtomicU64,
    transfer_bytes: AtomicU64,
    fault_events: AtomicU64,
    recovery_events: AtomicU64,
}

impl Default for Inner {
    fn default() -> Self {
        Self::with_cap(u64::MAX)
    }
}

impl Inner {
    fn with_cap(event_cap: u64) -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            event_cap,
            cat_counts: Default::default(),
            cat_dropped: Default::default(),
            kernel_launches: AtomicU64::new(0),
            kernel_cycles: AtomicU64::new(0),
            alloc_events: AtomicU64::new(0),
            free_events: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
            transfer_events: AtomicU64::new(0),
            transfer_bytes: AtomicU64::new(0),
            fault_events: AtomicU64::new(0),
            recovery_events: AtomicU64::new(0),
        }
    }
}

/// Shared run-telemetry recorder.
///
/// Clones share one buffer. A recorder is either *enabled* (holds an event
/// buffer plus counters) or *disabled* (a `None`; every record call returns
/// immediately without touching memory).
///
/// Each handle carries a `pid` tag — the Perfetto process group its events
/// land in. [`RunTrace::for_device`] derives a handle for another simulated
/// device: same shared buffer, caps, and counters, different process group,
/// so a multi-GPU run exports as one trace file with one timeline per GPU.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    inner: Option<Arc<Inner>>,
    pid: u64,
    /// Metrics instrument sink; records run *before* the enabled/disabled
    /// check on `inner`, so `RunTrace::disabled().with_metrics(..)` supports
    /// metrics-only runs with no event buffering (and capped recorders keep
    /// exact metrics past their caps).
    metrics: MetricsSink,
}

impl RunTrace {
    /// A recorder that drops everything. Zero overhead beyond one branch
    /// per record call.
    pub fn disabled() -> Self {
        Self {
            inner: None,
            pid: 0,
            metrics: MetricsSink::disabled(),
        }
    }

    /// A live recorder with an unbounded event buffer.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
            pid: 0,
            metrics: MetricsSink::disabled(),
        }
    }

    /// A live recorder that retains at most `cap` events *per category*
    /// (phase / kernel / memory / transfer / fault). Beyond the cap, events
    /// in that category are discarded — the summary counters stay exact
    /// (every launch, byte, and fault is still counted) and the discards
    /// are reported as [`TraceSummary::dropped_events`]. Bounds trace
    /// memory and file size on long runs, where the kernel lane alone can
    /// reach millions of events.
    pub fn enabled_with_event_cap(cap: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner::with_cap(cap as u64))),
            pid: 0,
            metrics: MetricsSink::disabled(),
        }
    }

    /// A handle recording into the *same* shared buffer (and the same
    /// per-category caps and summary counters) but tagging every event with
    /// Perfetto process group `pid`. Hand one to each simulated device of a
    /// multi-GPU engine so the export shows one process group per GPU; the
    /// attached metrics sink is re-labelled with the same device ordinal.
    pub fn for_device(&self, pid: u64) -> Self {
        Self {
            inner: self.inner.clone(),
            pid,
            metrics: self.metrics.for_device(pid as u32),
        }
    }

    /// Attaches a metrics sink: every kernel launch, memory event, fault,
    /// and recovery action recorded through this trace also updates the
    /// sink's registry. Works on disabled recorders too (metrics without
    /// event buffering).
    pub fn with_metrics(mut self, metrics: MetricsSink) -> Self {
        self.metrics = metrics;
        self
    }

    /// The attached metrics sink (disabled by default).
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// The Perfetto process group this handle tags events with.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn push(&self, ev: TraceEvent) {
        if let Some(inner) = &self.inner {
            let lane = ev.cat.lane() as usize;
            if inner.event_cap != u64::MAX {
                // Claim a slot under the category's cap; on overflow, undo
                // and count the drop instead of buffering.
                let claimed = inner.cat_counts[lane].fetch_add(1, Ordering::Relaxed);
                if claimed >= inner.event_cap {
                    inner.cat_counts[lane].fetch_sub(1, Ordering::Relaxed);
                    inner.cat_dropped[lane].fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            inner.events.lock().expect("trace buffer poisoned").push(ev);
        }
    }

    /// Records one IMM driver phase as a span.
    pub fn record_phase(&self, name: &str, ts_us: f64, dur_us: f64) {
        if self.inner.is_none() {
            return;
        }
        self.push(TraceEvent {
            name: name.to_string(),
            cat: EventCat::Phase,
            ts_us,
            pid: self.pid,
            kind: EventKind::Span { dur_us },
            args: Vec::new(),
        });
    }

    /// Records one simulated kernel launch as a span, with its grid size and
    /// cycle accounting (`total_cycles` across all blocks, `max_block_cycles`
    /// for the most expensive block — the load-imbalance indicator).
    pub fn record_kernel(
        &self,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        num_blocks: usize,
        total_cycles: u64,
        max_block_cycles: u64,
    ) {
        self.record_kernel_hw(
            name,
            ts_us,
            dur_us,
            num_blocks,
            total_cycles,
            max_block_cycles,
            &KernelHw::default(),
        );
    }

    /// [`RunTrace::record_kernel`] with full hardware counters for the
    /// launch (occupancy, divergence, memory transactions, atomics, …).
    /// The counters flow into the attached metrics sink; the trace event is
    /// unchanged, so span sums and metric totals reconcile exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn record_kernel_hw(
        &self,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        num_blocks: usize,
        total_cycles: u64,
        max_block_cycles: u64,
        hw: &KernelHw,
    ) {
        self.metrics.record_launch(
            name,
            num_blocks as u64,
            dur_us,
            total_cycles,
            max_block_cycles,
            hw,
        );
        let Some(inner) = &self.inner else { return };
        inner.kernel_launches.fetch_add(1, Ordering::Relaxed);
        inner
            .kernel_cycles
            .fetch_add(total_cycles, Ordering::Relaxed);
        self.push(TraceEvent {
            name: name.to_string(),
            cat: EventCat::Kernel,
            ts_us,
            pid: self.pid,
            kind: EventKind::Span { dur_us },
            args: vec![
                ("blocks", ArgValue::U64(num_blocks as u64)),
                ("total_cycles", ArgValue::U64(total_cycles)),
                ("max_block_cycles", ArgValue::U64(max_block_cycles)),
            ],
        });
    }

    /// Records a device allocation: `bytes` reserved, `in_use` the total
    /// after the allocation. Emits a counter sample for the memory track.
    pub fn record_alloc(&self, ts_us: f64, bytes: usize, in_use: usize) {
        self.metrics.record_alloc(bytes as u64, in_use as u64);
        let Some(inner) = &self.inner else { return };
        inner.alloc_events.fetch_add(1, Ordering::Relaxed);
        inner.peak_bytes.fetch_max(in_use as u64, Ordering::Relaxed);
        self.push(TraceEvent {
            name: "device_mem_in_use".to_string(),
            cat: EventCat::Memory,
            ts_us,
            pid: self.pid,
            kind: EventKind::Counter {
                value: in_use as f64,
            },
            args: vec![("alloc_bytes", ArgValue::U64(bytes as u64))],
        });
    }

    /// Records a device free: `bytes` released, `in_use` the total after.
    pub fn record_free(&self, ts_us: f64, bytes: usize, in_use: usize) {
        self.metrics.record_free(bytes as u64);
        let Some(inner) = &self.inner else { return };
        inner.free_events.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            name: "device_mem_in_use".to_string(),
            cat: EventCat::Memory,
            ts_us,
            pid: self.pid,
            kind: EventKind::Counter {
                value: in_use as f64,
            },
            args: vec![("free_bytes", ArgValue::U64(bytes as u64))],
        });
    }

    /// Records a failed device allocation (the request that did not fit).
    pub fn record_alloc_failure(&self, ts_us: f64, requested: usize, in_use: usize) {
        self.metrics.record_alloc_failure();
        if self.inner.is_none() {
            return;
        }
        self.push(TraceEvent {
            name: "alloc_failed".to_string(),
            cat: EventCat::Memory,
            ts_us,
            pid: self.pid,
            kind: EventKind::Instant,
            args: vec![
                ("requested", ArgValue::U64(requested as u64)),
                ("in_use", ArgValue::U64(in_use as u64)),
            ],
        });
    }

    /// Records a PCIe transfer (`name` like `"h2d:graph"`) as a span.
    pub fn record_transfer(&self, name: &str, ts_us: f64, dur_us: f64, bytes: usize) {
        let Some(inner) = &self.inner else { return };
        inner.transfer_events.fetch_add(1, Ordering::Relaxed);
        inner
            .transfer_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.push(TraceEvent {
            name: name.to_string(),
            cat: EventCat::Transfer,
            ts_us,
            pid: self.pid,
            kind: EventKind::Span { dur_us },
            args: vec![("bytes", ArgValue::U64(bytes as u64))],
        });
    }

    /// Records an async copy enqueued on a device copy stream (`name` like
    /// `"stream:h2d"`) as a span on the copy-stream lane. `ts_us` is the
    /// stream-scheduled start (which can lie *ahead* of the device clock —
    /// that is the overlap). Counts into the same transfer totals as
    /// [`RunTrace::record_transfer`]: the summary reports all PCIe traffic
    /// together, the lanes keep sync and async copies apart.
    pub fn record_copy(&self, name: &str, ts_us: f64, dur_us: f64, bytes: usize) {
        let Some(inner) = &self.inner else { return };
        inner.transfer_events.fetch_add(1, Ordering::Relaxed);
        inner
            .transfer_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.push(TraceEvent {
            name: name.to_string(),
            cat: EventCat::CopyStream,
            ts_us,
            pid: self.pid,
            kind: EventKind::Span { dur_us },
            args: vec![("bytes", ArgValue::U64(bytes as u64))],
        });
    }

    /// Records an injected simulator fault (`name` like `"fault:kernel_launch"`)
    /// as an instant on the fault lane, keyed by its deterministic event
    /// ordinal in the fault plan.
    pub fn record_fault(&self, name: &str, ts_us: f64, ordinal: u64) {
        self.metrics.record_fault(name);
        let Some(inner) = &self.inner else { return };
        inner.fault_events.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            name: name.to_string(),
            cat: EventCat::Fault,
            ts_us,
            pid: self.pid,
            kind: EventKind::Instant,
            args: vec![("ordinal", ArgValue::U64(ordinal))],
        });
    }

    /// Records a recovery action (`name` like `"recover:retry"`,
    /// `"recover:batch_split"`, `"recover:spill"`) as an instant on the
    /// fault lane, with free-form detail arguments.
    pub fn record_recovery(&self, name: &str, ts_us: f64, args: Vec<(&'static str, ArgValue)>) {
        self.metrics.record_recovery(name);
        let Some(inner) = &self.inner else { return };
        inner.recovery_events.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            name: name.to_string(),
            cat: EventCat::Fault,
            ts_us,
            pid: self.pid,
            kind: EventKind::Instant,
            args,
        });
    }

    /// A snapshot of every event recorded so far, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map(|i| i.events.lock().expect("trace buffer poisoned").clone())
            .unwrap_or_default()
    }

    /// Condenses the recorded stream into summary counters.
    pub fn summary(&self) -> TraceSummary {
        let Some(inner) = &self.inner else {
            return TraceSummary::default();
        };
        let phase_us = inner
            .events
            .lock()
            .expect("trace buffer poisoned")
            .iter()
            .filter(|e| e.cat == EventCat::Phase)
            .filter_map(|e| match e.kind {
                EventKind::Span { dur_us } => Some((e.name.clone(), dur_us)),
                _ => None,
            })
            .collect();
        TraceSummary {
            kernel_launches: inner.kernel_launches.load(Ordering::Relaxed),
            kernel_cycles: inner.kernel_cycles.load(Ordering::Relaxed),
            alloc_events: inner.alloc_events.load(Ordering::Relaxed),
            free_events: inner.free_events.load(Ordering::Relaxed),
            peak_bytes: inner.peak_bytes.load(Ordering::Relaxed),
            transfer_events: inner.transfer_events.load(Ordering::Relaxed),
            transfer_bytes: inner.transfer_bytes.load(Ordering::Relaxed),
            fault_events: inner.fault_events.load(Ordering::Relaxed),
            recovery_events: inner.recovery_events.load(Ordering::Relaxed),
            dropped_events: inner
                .cat_dropped
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .sum(),
            phase_us,
        }
    }

    /// Serializes the stream as a Chrome trace-event JSON object (the
    /// `{"traceEvents": [...]}` dictionary form), loadable in Perfetto or
    /// `chrome://tracing`. `metadata` lands under `otherData`; the
    /// [`TraceSummary`] is embedded under `summary`.
    pub fn chrome_json(&self, metadata: &[(&str, String)]) -> Value {
        let recorded = self.events();
        let mut events: Vec<Value> = Vec::new();
        for &pid in &Self::stream_pids(&recorded) {
            events.extend(Self::process_meta_events(pid));
        }
        for ev in &recorded {
            events.push(Self::event_to_value(ev));
        }
        json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": Value::Object(Self::metadata_object(metadata)),
            "summary": self.summary().to_json(),
        })
    }

    /// One Perfetto process group per device pid seen in the stream (a run
    /// with no events still gets the default group 0).
    fn stream_pids(recorded: &[TraceEvent]) -> std::collections::BTreeSet<u64> {
        let mut pids: std::collections::BTreeSet<u64> = recorded.iter().map(|e| e.pid).collect();
        pids.insert(0);
        pids
    }

    /// Process-name plus lane-name metadata events for one process group,
    /// so Perfetto shows devices and subsystems instead of raw pids/tids.
    fn process_meta_events(pid: u64) -> Vec<Value> {
        let mut events = vec![json!({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": serde_json::json!({ "name": format!("device {pid}") }),
        })];
        for cat in EventCat::ALL {
            events.push(json!({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": cat.lane(),
                "args": serde_json::json!({ "name": cat.lane_name() }),
            }));
        }
        events
    }

    fn event_to_value(ev: &TraceEvent) -> Value {
        let mut args = serde_json::Map::new();
        for (k, v) in &ev.args {
            args.insert((*k).to_string(), Value::from(v));
        }
        let mut obj = serde_json::Map::new();
        obj.insert("name".to_string(), Value::from(ev.name.as_str()));
        obj.insert("cat".to_string(), Value::from(ev.cat.as_str()));
        obj.insert("pid".to_string(), Value::from(ev.pid));
        obj.insert("tid".to_string(), Value::from(ev.cat.lane()));
        obj.insert("ts".to_string(), Value::from(ev.ts_us));
        match ev.kind {
            EventKind::Span { dur_us } => {
                obj.insert("ph".to_string(), Value::from("X"));
                obj.insert("dur".to_string(), Value::from(dur_us));
            }
            EventKind::Instant => {
                obj.insert("ph".to_string(), Value::from("i"));
                obj.insert("s".to_string(), Value::from("t"));
            }
            EventKind::Counter { value } => {
                obj.insert("ph".to_string(), Value::from("C"));
                args.insert("in_use".to_string(), Value::from(value));
            }
        }
        obj.insert("args".to_string(), Value::Object(args));
        Value::Object(obj)
    }

    fn metadata_object(metadata: &[(&str, String)]) -> serde_json::Map {
        let mut other = serde_json::Map::new();
        for (k, v) in metadata {
            other.insert((*k).to_string(), Value::from(v.as_str()));
        }
        other
    }

    /// Streams [`RunTrace::chrome_json`] into `w` one event at a time,
    /// byte-identical to pretty-printing the whole document but without
    /// materialising it: peak memory is one rendered event instead of the
    /// entire JSON string, which matters for full-scale `reproduce` sweeps
    /// where the kernel lane alone holds millions of events.
    pub fn write_chrome_stream<W: std::io::Write>(
        &self,
        mut w: W,
        metadata: &[(&str, String)],
    ) -> std::io::Result<()> {
        let recorded = self.events();
        // `traceEvents` is never empty — pid 0 always contributes metadata
        // events — so the array brackets never need the empty-`[]` form.
        w.write_all(b"{\n  \"traceEvents\": [")?;
        let mut first = true;
        for &pid in &Self::stream_pids(&recorded) {
            for v in Self::process_meta_events(pid) {
                Self::write_stream_event(&mut w, &v, &mut first)?;
            }
        }
        for ev in &recorded {
            Self::write_stream_event(&mut w, &Self::event_to_value(ev), &mut first)?;
        }
        let mut tail = String::from("\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": ");
        write_pretty(
            &mut tail,
            &Value::Object(Self::metadata_object(metadata)),
            1,
        );
        tail.push_str(",\n  \"summary\": ");
        write_pretty(&mut tail, &self.summary().to_json(), 1);
        tail.push_str("\n}");
        w.write_all(tail.as_bytes())
    }

    /// Renders one `traceEvents` entry at array depth, with its separator.
    fn write_stream_event<W: std::io::Write>(
        w: &mut W,
        v: &Value,
        first: &mut bool,
    ) -> std::io::Result<()> {
        let mut s = String::with_capacity(256);
        if !*first {
            s.push(',');
        }
        *first = false;
        s.push_str("\n    ");
        write_pretty(&mut s, v, 2);
        w.write_all(s.as_bytes())
    }

    /// Writes [`RunTrace::chrome_json`] to `path`, creating parent
    /// directories as needed. Streams into `<path>.tmp` and renames over
    /// the target, so a failure mid-write (full disk, crash) cannot leave a
    /// truncated, unloadable trace behind.
    pub fn write_chrome_file(
        &self,
        path: &Path,
        metadata: &[(&str, String)],
    ) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tmp_name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let result = (|| {
            let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            self.write_chrome_stream(&mut out, metadata)?;
            use std::io::Write as _;
            out.flush()?;
            out.into_inner()
                .map_err(|e| std::io::Error::other(e.to_string()))?
                .sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

/// Mirror of the vendored `serde_json::to_string_pretty` value renderer at
/// an arbitrary starting depth, used by [`RunTrace::write_chrome_stream`] to
/// emit one event at a time while staying byte-identical to whole-document
/// pretty printing (the `stream_matches_to_string_pretty` test locks the two
/// together).
fn write_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_pretty_number(out, n),
        Value::String(s) => write_pretty_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pretty_newline(out, depth + 1);
                write_pretty(out, elem, depth + 1);
            }
            pretty_newline(out, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pretty_newline(out, depth + 1);
                write_pretty_string(out, k);
                out.push_str(": ");
                write_pretty(out, elem, depth + 1);
            }
            pretty_newline(out, depth);
            out.push('}');
        }
    }
}

fn pretty_newline(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty_number(out: &mut String, n: &serde_json::Number) {
    match *n {
        serde_json::Number::PosInt(v) => out.push_str(&v.to_string()),
        serde_json::Number::NegInt(v) => out.push_str(&v.to_string()),
        serde_json::Number::Float(f) => {
            if !f.is_finite() {
                out.push_str("null");
            } else if f == f.trunc() && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
    }
}

fn write_pretty_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = {
                    use std::fmt::Write as _;
                    write!(out, "\\u{:04x}", c as u32)
                };
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Machine-readable condensation of one run's telemetry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Number of simulated kernel launches.
    pub kernel_launches: u64,
    /// Total simulated cycles across all launches' blocks.
    pub kernel_cycles: u64,
    /// Number of device allocations.
    pub alloc_events: u64,
    /// Number of device frees.
    pub free_events: u64,
    /// High-water mark of device bytes in use, as seen by the recorder.
    pub peak_bytes: u64,
    /// Number of PCIe transfers.
    pub transfer_events: u64,
    /// Total bytes moved across PCIe.
    pub transfer_bytes: u64,
    /// Number of injected simulator faults observed.
    pub fault_events: u64,
    /// Number of recovery actions (retries, batch splits, spills) recorded.
    pub recovery_events: u64,
    /// Events discarded by a per-category cap
    /// ([`RunTrace::enabled_with_event_cap`]); 0 for unbounded recorders.
    /// The other counters here stay exact regardless of drops.
    pub dropped_events: u64,
    /// Per-phase simulated durations `(name, µs)`, in completion order.
    pub phase_us: Vec<(String, f64)>,
}

impl TraceSummary {
    /// The summary as a JSON object (embedded in trace files and `--json`
    /// CLI output).
    pub fn to_json(&self) -> Value {
        let mut phases = serde_json::Map::new();
        for (name, us) in &self.phase_us {
            phases.insert(name.clone(), Value::from(*us));
        }
        json!({
            "kernel_launches": self.kernel_launches,
            "kernel_cycles": self.kernel_cycles,
            "alloc_events": self.alloc_events,
            "free_events": self.free_events,
            "peak_device_bytes": self.peak_bytes,
            "transfer_events": self.transfer_events,
            "transfer_bytes": self.transfer_bytes,
            "fault_events": self.fault_events,
            "recovery_events": self.recovery_events,
            "dropped_events": self.dropped_events,
            "phase_us": Value::Object(phases),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_returns_start() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0.0);
        assert_eq!(c.advance(5.0), 0.0);
        assert_eq!(c.advance(2.5), 5.0);
        assert_eq!(c.now_us(), 7.5);
        c.reset();
        assert_eq!(c.now_us(), 0.0);
    }

    #[test]
    fn clock_is_race_free() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1.0);
                    }
                });
            }
        });
        assert_eq!(c.now_us(), 8000.0);
    }

    #[test]
    fn disabled_records_nothing() {
        let t = RunTrace::disabled();
        t.record_phase("sampling", 0.0, 10.0);
        t.record_kernel("k", 0.0, 1.0, 4, 100, 50);
        t.record_alloc(0.0, 64, 64);
        t.record_transfer("h2d", 0.0, 1.0, 1024);
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert_eq!(t.summary(), TraceSummary::default());
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = RunTrace::enabled();
        let t2 = t.clone();
        t.record_kernel("a", 0.0, 1.0, 2, 10, 7);
        t2.record_kernel("b", 1.0, 1.0, 2, 20, 9);
        let s = t.summary();
        assert_eq!(s.kernel_launches, 2);
        assert_eq!(s.kernel_cycles, 30);
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn summary_tracks_memory_high_water() {
        let t = RunTrace::enabled();
        t.record_alloc(0.0, 100, 100);
        t.record_alloc(1.0, 400, 500);
        t.record_free(2.0, 400, 100);
        t.record_alloc(3.0, 50, 150);
        let s = t.summary();
        assert_eq!(s.peak_bytes, 500);
        assert_eq!(s.alloc_events, 3);
        assert_eq!(s.free_events, 1);
    }

    #[test]
    fn chrome_json_shape() {
        let t = RunTrace::enabled();
        t.record_phase("estimation", 0.0, 3.0);
        t.record_kernel("eim_sample", 0.5, 2.0, 8, 1000, 200);
        t.record_alloc(0.1, 64, 64);
        t.record_transfer("h2d:graph", 0.0, 0.4, 4096);
        let v = t.chrome_json(&[("engine", "eim".to_string())]);
        let events = v["traceEvents"].as_array().expect("array");
        // 1 process-name + 6 lane-name metadata events + 4 recorded events.
        assert_eq!(events.len(), 11);
        let phase = events
            .iter()
            .find(|e| e["name"] == "estimation")
            .expect("phase event");
        assert_eq!(phase["ph"], "X");
        assert_eq!(phase["dur"].as_f64(), Some(3.0));
        let kernel = events
            .iter()
            .find(|e| e["name"] == "eim_sample")
            .expect("kernel event");
        assert_eq!(kernel["cat"], "kernel");
        assert_eq!(kernel["args"]["blocks"].as_u64(), Some(8));
        let counter = events
            .iter()
            .find(|e| e["ph"] == "C")
            .expect("counter event");
        assert_eq!(counter["args"]["in_use"].as_f64(), Some(64.0));
        assert_eq!(v["otherData"]["engine"], "eim");
        assert_eq!(v["summary"]["kernel_launches"].as_u64(), Some(1));
        // Round-trips through the serializer and parser.
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["summary"]["transfer_bytes"].as_u64(), Some(4096));
    }

    #[test]
    fn clock_advance_to_never_moves_backwards() {
        let c = SimClock::new();
        c.advance(10.0);
        assert_eq!(c.advance_to(7.0), 10.0);
        assert_eq!(c.now_us(), 10.0, "waiting on a past event is free");
        assert_eq!(c.advance_to(12.5), 10.0);
        assert_eq!(c.now_us(), 12.5);
    }

    #[test]
    fn per_device_handles_share_counters_but_tag_pids() {
        let t = RunTrace::enabled();
        let d1 = t.for_device(1);
        assert_eq!(t.pid(), 0);
        assert_eq!(d1.pid(), 1);
        t.record_kernel("k0", 0.0, 1.0, 2, 10, 7);
        d1.record_kernel("k1", 0.0, 1.0, 2, 20, 9);
        d1.record_copy("stream:d2h", 1.0, 0.5, 4096);
        let events = t.events();
        assert_eq!(events.len(), 3, "one shared buffer");
        let pid_of = |name: &str| events.iter().find(|e| e.name == name).unwrap().pid;
        assert_eq!(pid_of("k0"), 0);
        assert_eq!(pid_of("k1"), 1);
        assert_eq!(pid_of("stream:d2h"), 1);
        let s = t.summary();
        assert_eq!(s.kernel_launches, 2);
        assert_eq!(s.transfer_events, 1, "stream copies count as transfers");
        assert_eq!(s.transfer_bytes, 4096);
    }

    #[test]
    fn chrome_json_emits_one_process_group_per_device() {
        let t = RunTrace::enabled();
        t.record_kernel("k0", 0.0, 1.0, 1, 1, 1);
        t.for_device(2).record_copy("stream:d2h", 0.0, 1.0, 64);
        let v = t.chrome_json(&[]);
        let events = v["traceEvents"].as_array().unwrap();
        let names: Vec<u64> = events
            .iter()
            .filter(|e| e["name"] == "process_name")
            .map(|e| e["pid"].as_u64().unwrap())
            .collect();
        assert_eq!(names, vec![0, 2]);
        let copy = events.iter().find(|e| e["name"] == "stream:d2h").unwrap();
        assert_eq!(copy["pid"].as_u64(), Some(2));
        assert_eq!(copy["cat"], "transfer");
        assert_eq!(copy["ph"], "X");
        // Copy-stream spans render on their own lane, apart from sync PCIe.
        assert_eq!(copy["tid"].as_u64(), Some(5));
    }

    #[test]
    fn fault_and_recovery_events_land_on_the_fault_lane() {
        let t = RunTrace::enabled();
        t.record_fault("fault:kernel_launch", 1.0, 7);
        t.record_recovery(
            "recover:retry",
            2.0,
            vec![
                ("attempt", ArgValue::U64(1)),
                ("backoff_us", ArgValue::F64(50.0)),
            ],
        );
        let s = t.summary();
        assert_eq!(s.fault_events, 1);
        assert_eq!(s.recovery_events, 1);
        let v = t.chrome_json(&[]);
        let events = v["traceEvents"].as_array().unwrap();
        let fault = events
            .iter()
            .find(|e| e["name"] == "fault:kernel_launch")
            .expect("fault event");
        assert_eq!(fault["cat"], "fault");
        assert_eq!(fault["ph"], "i");
        assert_eq!(fault["args"]["ordinal"].as_u64(), Some(7));
        let rec = events
            .iter()
            .find(|e| e["name"] == "recover:retry")
            .expect("recovery event");
        assert_eq!(rec["args"]["attempt"].as_u64(), Some(1));
        assert_eq!(v["summary"]["fault_events"].as_u64(), Some(1));
        assert_eq!(v["summary"]["recovery_events"].as_u64(), Some(1));
    }

    #[test]
    fn event_cap_bounds_each_category_and_counts_drops() {
        let t = RunTrace::enabled_with_event_cap(3);
        for i in 0..10 {
            t.record_kernel("k", i as f64, 1.0, 1, 100, 50);
        }
        // A different category has its own budget.
        t.record_transfer("h2d", 0.0, 1.0, 64);
        let kernels = t
            .events()
            .iter()
            .filter(|e| e.cat == EventCat::Kernel)
            .count();
        assert_eq!(kernels, 3, "kernel lane capped");
        assert_eq!(
            t.events()
                .iter()
                .filter(|e| e.cat == EventCat::Transfer)
                .count(),
            1
        );
        let s = t.summary();
        assert_eq!(s.dropped_events, 7);
        // Aggregate counters stay exact despite the drops.
        assert_eq!(s.kernel_launches, 10);
        assert_eq!(s.kernel_cycles, 1000);
        assert_eq!(s.transfer_events, 1);
        let v = t.chrome_json(&[]);
        assert_eq!(v["summary"]["dropped_events"].as_u64(), Some(7));
    }

    #[test]
    fn uncapped_recorder_reports_zero_drops() {
        let t = RunTrace::enabled();
        for i in 0..100 {
            t.record_kernel("k", i as f64, 1.0, 1, 1, 1);
        }
        assert_eq!(t.summary().dropped_events, 0);
        assert_eq!(t.events().len(), 100);
    }

    #[test]
    fn capped_recorder_is_race_free() {
        let t = RunTrace::enabled_with_event_cap(50);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        t.record_kernel("k", i as f64, 1.0, 1, 1, 1);
                    }
                });
            }
        });
        let s = t.summary();
        assert_eq!(s.kernel_launches, 800);
        assert_eq!(t.events().len(), 50);
        assert_eq!(s.dropped_events, 750);
    }

    fn busy_trace() -> RunTrace {
        let t = RunTrace::enabled();
        t.record_phase("estimation", 0.0, 3.25);
        t.record_kernel("eim_sample", 0.5, 2.0, 8, 1000, 200);
        t.record_kernel_hw(
            "eim_select:iter0",
            2.5,
            1.5,
            4,
            400,
            120,
            &KernelHw {
                occ_busy_cycles: 100,
                occ_capacity_cycles: 4000,
                active_lane_cycles: 9000,
                idle_lane_cycles: 3800,
                global_transactions: 12,
                global_bytes: 1536,
                atomics: 3,
                ..KernelHw::default()
            },
        );
        t.record_alloc(0.1, 64, 64);
        t.record_alloc_failure(0.2, 1 << 30, 64);
        t.record_transfer("h2d:graph", 0.0, 0.4, 4096);
        t.for_device(2).record_copy("stream:d2h", 1.0, 0.5, 8192);
        t.record_fault("fault:kernel_launch", 1.0, 7);
        t.record_recovery(
            "recover:retry",
            2.0,
            vec![
                ("attempt", ArgValue::U64(1)),
                ("quote", ArgValue::Str("a\"b\\c".into())),
            ],
        );
        t
    }

    #[test]
    fn stream_matches_to_string_pretty() {
        let t = busy_trace();
        let meta = [("engine", "eim".to_string()), ("dataset", "WV".to_string())];
        let whole = serde_json::to_string_pretty(&t.chrome_json(&meta)).unwrap();
        let mut streamed = Vec::new();
        t.write_chrome_stream(&mut streamed, &meta).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), whole);
        // Empty metadata exercises the `{}` object form.
        let whole = serde_json::to_string_pretty(&t.chrome_json(&[])).unwrap();
        let mut streamed = Vec::new();
        t.write_chrome_stream(&mut streamed, &[]).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), whole);
    }

    #[test]
    fn stream_of_empty_trace_matches_too() {
        let t = RunTrace::enabled();
        let whole = serde_json::to_string_pretty(&t.chrome_json(&[])).unwrap();
        let mut streamed = Vec::new();
        t.write_chrome_stream(&mut streamed, &[]).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), whole);
    }

    #[test]
    fn write_chrome_file_is_atomic_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("eim_trace_test_atomic");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("out.trace.json");
        let t = busy_trace();
        t.write_chrome_file(&path, &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            serde_json::to_string_pretty(&t.chrome_json(&[])).unwrap()
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");
        // Overwriting an existing trace goes through the same rename.
        t.write_chrome_file(&path, &[("run", "2".to_string())])
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"run\": \"2\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_ride_the_trace_recorders() {
        let reg = MetricsRegistry::new();
        let t = RunTrace::enabled().with_metrics(reg.sink().with_engine("eim"));
        t.record_kernel("k", 0.0, 2.0, 4, 100, 60);
        t.for_device(1).record_kernel("k", 2.0, 1.0, 2, 40, 30);
        t.record_alloc(0.0, 100, 100);
        t.record_free(1.0, 100, 0);
        t.record_fault("fault:transfer", 1.0, 3);
        t.record_recovery("recover:retry", 2.0, vec![]);
        let profiles = reg.kernel_profiles();
        assert_eq!(profiles.len(), 2, "per-device profile keys");
        assert_eq!(profiles[0].0.device, 0);
        assert_eq!(profiles[0].1.cycles, 100);
        assert_eq!(profiles[1].0.device, 1);
        assert_eq!(profiles[1].1.cycles, 40);
        let text = reg.render_prometheus();
        assert!(
            text.contains(
                "eim_faults_injected_total{device=\"0\",engine=\"eim\",kind=\"fault:transfer\"} 1"
            ),
            "{text}"
        );
        assert!(text.contains("eim_recovery_actions_total{action=\"recover:retry\",device=\"0\",engine=\"eim\"} 1"), "{text}");
        assert!(
            text.contains("eim_device_mem_peak_bytes{device=\"0\",engine=\"eim\"} 100"),
            "{text}"
        );
        // The trace events themselves are unchanged by the metrics sink.
        assert_eq!(t.summary().kernel_launches, 2);
    }

    #[test]
    fn disabled_trace_with_metrics_still_collects_metrics() {
        let reg = MetricsRegistry::new();
        let t = RunTrace::disabled().with_metrics(reg.sink().with_engine("bench"));
        t.record_kernel("k", 0.0, 1.0, 1, 10, 10);
        assert!(!t.is_enabled());
        assert!(t.events().is_empty(), "no event buffering");
        assert_eq!(reg.kernel_profiles().len(), 1, "metrics still flow");
        assert!(t.metrics().is_enabled());
    }

    #[test]
    fn write_chrome_file_creates_dirs() {
        let dir = std::env::temp_dir().join("eim_trace_test_dir");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("out.trace.json");
        let t = RunTrace::enabled();
        t.record_phase("sampling", 0.0, 1.0);
        t.write_chrome_file(&path, &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        assert!(v["traceEvents"].as_array().unwrap().len() >= 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
