//! Monte-Carlo influence-spread estimation.

use eim_graph::{Graph, VertexId};
use rayon::prelude::*;

use crate::rng::sample_rng;
use crate::{simulate_ic, simulate_lt, DiffusionModel};

/// Estimates `E[I(S)]` — the expected number of activated vertices when
/// diffusion starts from `seeds` — by averaging `num_sims` independent
/// forward simulations (run in parallel; simulation `i` uses the
/// deterministic stream `(seed, i)`).
///
/// This is the quantity §4.1 calls "quality of solutions".
pub fn estimate_spread(
    graph: &Graph,
    seeds: &[VertexId],
    model: DiffusionModel,
    num_sims: usize,
    seed: u64,
) -> f64 {
    if num_sims == 0 {
        return 0.0;
    }
    let total: usize = (0..num_sims as u64)
        .into_par_iter()
        .map(|i| {
            let mut rng = sample_rng(seed, i);
            match model {
                DiffusionModel::IndependentCascade => simulate_ic(graph, seeds, &mut rng).len(),
                DiffusionModel::LinearThreshold => simulate_lt(graph, seeds, &mut rng).len(),
            }
        })
        .sum();
    total as f64 / num_sims as f64
}

/// Per-vertex activation frequencies over `num_sims` simulations from
/// `seeds`: entry `v` is the fraction of runs in which `v` ended active.
/// The fine-grained companion to [`estimate_spread`] — *who* gets reached,
/// not just how many.
pub fn activation_frequencies(
    graph: &Graph,
    seeds: &[VertexId],
    model: DiffusionModel,
    num_sims: usize,
    seed: u64,
) -> Vec<f64> {
    let n = graph.num_vertices();
    if num_sims == 0 {
        return vec![0.0; n];
    }
    let counts: Vec<u32> = (0..num_sims as u64)
        .into_par_iter()
        .map(|i| {
            let mut rng = sample_rng(seed, i);
            let active = match model {
                DiffusionModel::IndependentCascade => simulate_ic(graph, seeds, &mut rng),
                DiffusionModel::LinearThreshold => simulate_lt(graph, seeds, &mut rng),
            };
            let mut marks = vec![0u32; n];
            for v in active {
                marks[v as usize] = 1;
            }
            marks
        })
        .reduce(
            || vec![0u32; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    counts
        .into_iter()
        .map(|c| c as f64 / num_sims as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eim_graph::{generators, WeightModel};

    #[test]
    fn deterministic_graph_gives_exact_spread() {
        let g = generators::path(20, WeightModel::WeightedCascade);
        let s = estimate_spread(&g, &[0], DiffusionModel::IndependentCascade, 50, 1);
        assert!((s - 20.0).abs() < 1e-12);
    }

    #[test]
    fn spread_is_monotone_in_seeds() {
        let g = generators::rmat(
            400,
            2_400,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            3,
        );
        let one = estimate_spread(&g, &[5], DiffusionModel::IndependentCascade, 400, 2);
        let two = estimate_spread(
            &g,
            &[5, 17, 200],
            DiffusionModel::IndependentCascade,
            400,
            2,
        );
        assert!(two >= one);
        assert!(one >= 1.0);
    }

    #[test]
    fn empty_seed_set_spreads_zero() {
        let g = generators::path(5, WeightModel::WeightedCascade);
        assert_eq!(
            estimate_spread(&g, &[], DiffusionModel::LinearThreshold, 10, 1),
            0.0
        );
    }

    #[test]
    fn zero_sims_is_zero() {
        let g = generators::path(5, WeightModel::WeightedCascade);
        assert_eq!(
            estimate_spread(&g, &[0], DiffusionModel::IndependentCascade, 0, 1),
            0.0
        );
    }

    #[test]
    fn parallel_estimate_is_deterministic() {
        let g = generators::rmat(
            300,
            1_800,
            generators::RmatParams::MILD,
            WeightModel::WeightedCascade,
            4,
        );
        let a = estimate_spread(&g, &[1, 2, 3], DiffusionModel::LinearThreshold, 200, 7);
        let b = estimate_spread(&g, &[1, 2, 3], DiffusionModel::LinearThreshold, 200, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn frequencies_sum_to_spread() {
        let g = generators::rmat(
            200,
            1_200,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            6,
        );
        let seeds = [3u32, 50];
        let freqs = activation_frequencies(&g, &seeds, DiffusionModel::IndependentCascade, 300, 9);
        let spread = estimate_spread(&g, &seeds, DiffusionModel::IndependentCascade, 300, 9);
        let total: f64 = freqs.iter().sum();
        assert!(
            (total - spread).abs() < 1e-9,
            "sum {total} vs spread {spread}"
        );
        // Seeds are always active; frequencies bounded.
        assert_eq!(freqs[3], 1.0);
        assert_eq!(freqs[50], 1.0);
        assert!(freqs.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn frequencies_zero_outside_reachable_set() {
        let g = generators::path(6, WeightModel::WeightedCascade);
        let freqs = activation_frequencies(&g, &[3], DiffusionModel::IndependentCascade, 50, 2);
        assert_eq!(&freqs[0..3], &[0.0, 0.0, 0.0]);
        assert_eq!(&freqs[3..], &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn lt_star_hub_spread() {
        // Hub -> 100 leaves, each leaf in-degree 1 (weight 1.0): seeding the
        // hub activates everything under LT.
        let g = generators::star_out(101, WeightModel::WeightedCascade);
        let s = estimate_spread(&g, &[0], DiffusionModel::LinearThreshold, 50, 5);
        assert!((s - 101.0).abs() < 1e-12);
    }
}
