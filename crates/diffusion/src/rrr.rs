//! CPU reverse-reachable (RRR) samplers.
//!
//! An RRR set rooted at a uniformly-random source `s` contains every vertex
//! that *would have activated `s`* in one realization of the diffusion —
//! equivalently, the visited set of a probabilistic reverse traversal
//! (§2.2, [18]). These serial samplers are the reference implementations the
//! GPU kernels are validated against, and power the CPU (Ripples-like)
//! engine.

use eim_graph::{Graph, VertexId};
use rand::Rng;

use crate::DiffusionModel;

/// Samples one RRR set under IC: reverse BFS from `source`, crossing each
/// in-edge `(u, v)` with probability `p_uv`. Returns the visited set sorted
/// ascending (the order the paper stores sets in for binary search).
pub fn sample_rrr_ic<R: Rng>(graph: &Graph, source: VertexId, rng: &mut R) -> Vec<VertexId> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut visited = vec![false; n];
    visited[source as usize] = true;
    let mut queue = vec![source];
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let nbrs = graph.in_neighbors(u);
        let ws = graph.in_weights(u);
        for (&v, &p) in nbrs.iter().zip(ws) {
            // Draw for every in-edge, visited or not — Algorithm 2's exact
            // order ("r <- Random(0,1); if r <= p_vu and M[v] = 0"), which
            // keeps this reference sampler's RNG stream aligned with the
            // device kernel's so their outputs are bit-identical per index.
            let r: f32 = rng.gen();
            if r <= p && !visited[v as usize] {
                visited[v as usize] = true;
                queue.push(v);
            }
        }
    }
    queue.sort_unstable();
    queue
}

/// Samples one RRR set under LT. From each reached vertex `u` the reverse
/// process activates *at most one* in-neighbor: with `tau_u` uniform in
/// `[0, 1]`, the first in-neighbor whose running weight sum reaches `tau_u`
/// is chosen (probability exactly `p_vu`; no neighbor with probability
/// `1 - sum`). The walk stops on a dead end or when it closes a cycle
/// (§2.1, §3.3).
pub fn sample_rrr_lt<R: Rng>(graph: &Graph, source: VertexId, rng: &mut R) -> Vec<VertexId> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut visited = vec![false; n];
    visited[source as usize] = true;
    let mut set = vec![source];
    let mut u = source;
    loop {
        let nbrs = graph.in_neighbors(u);
        if nbrs.is_empty() {
            break;
        }
        let ws = graph.in_weights(u);
        let tau: f32 = rng.gen();
        let mut acc = 0.0f32;
        let mut chosen: Option<VertexId> = None;
        for (&v, &p) in nbrs.iter().zip(ws) {
            acc += p;
            if acc >= tau {
                chosen = Some(v);
                break;
            }
        }
        match chosen {
            Some(v) if !visited[v as usize] => {
                visited[v as usize] = true;
                set.push(v);
                u = v;
            }
            // Chose an already-visited vertex (cycle) or nobody: stop.
            _ => break,
        }
    }
    set.sort_unstable();
    set
}

/// Samples one RRR set under the given model.
pub fn sample_rrr<R: Rng>(
    graph: &Graph,
    model: DiffusionModel,
    source: VertexId,
    rng: &mut R,
) -> Vec<VertexId> {
    match model {
        DiffusionModel::IndependentCascade => sample_rrr_ic(graph, source, rng),
        DiffusionModel::LinearThreshold => sample_rrr_lt(graph, source, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_rng;
    use eim_graph::{generators, GraphBuilder, WeightModel};

    #[test]
    fn ic_on_path_collects_all_ancestors() {
        // path 0 -> 1 -> ... -> 9 with p = 1: reverse from 9 reaches all.
        let g = generators::path(10, WeightModel::WeightedCascade);
        let mut rng = sample_rng(1, 0);
        assert_eq!(sample_rrr_ic(&g, 9, &mut rng), (0..10).collect::<Vec<_>>());
        assert_eq!(sample_rrr_ic(&g, 0, &mut rng), vec![0]);
    }

    #[test]
    fn ic_set_contains_source_and_is_sorted_unique() {
        let g = generators::rmat(
            500,
            3_000,
            generators::RmatParams::GRAPH500,
            WeightModel::WeightedCascade,
            11,
        );
        for i in 0..50 {
            let mut rng = sample_rng(2, i);
            let src = (i as u32 * 97) % 500;
            let set = sample_rrr_ic(&g, src, &mut rng);
            assert!(set.binary_search(&src).is_ok());
            assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        }
    }

    #[test]
    fn ic_respects_zero_probability() {
        let g = generators::complete(8, WeightModel::Uniform(0.0));
        let mut rng = sample_rng(3, 0);
        assert_eq!(sample_rrr_ic(&g, 4, &mut rng), vec![4]);
    }

    #[test]
    fn lt_set_is_path_through_in_edges() {
        // Every member of an LT RRR set (except the source) must have an
        // edge to the previously chosen member — verify connectivity into
        // the source through graph edges.
        let g = generators::rmat(
            300,
            2_000,
            generators::RmatParams::MILD,
            WeightModel::WeightedCascade,
            5,
        );
        for i in 0..50 {
            let mut rng = sample_rng(4, i);
            let src = (i as u32 * 31) % 300;
            let set = sample_rrr_lt(&g, src, &mut rng);
            assert!(set.contains(&src));
            assert!(set.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn lt_on_cycle_terminates() {
        // All-1.0 weights on a cycle: the reverse walk must stop after one
        // lap instead of looping forever.
        let g = generators::cycle(6, WeightModel::WeightedCascade);
        let mut rng = sample_rng(5, 0);
        let set = sample_rrr_lt(&g, 0, &mut rng);
        assert_eq!(set, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn lt_isolated_source_is_singleton() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .build(WeightModel::WeightedCascade);
        let mut rng = sample_rng(6, 0);
        assert_eq!(sample_rrr_lt(&g, 3, &mut rng), vec![3]);
        // vertex 0 has no in-edges either.
        assert_eq!(sample_rrr_lt(&g, 0, &mut rng), vec![0]);
    }

    #[test]
    fn lt_chooses_neighbors_proportionally() {
        // v = 2 with in-neighbors {0, 1}, weights 0.5 / 0.5: the single
        // reverse step picks each with probability 1/2.
        let g = GraphBuilder::new(3)
            .edges([(0, 2), (1, 2)])
            .build(WeightModel::WeightedCascade);
        let mut zero = 0;
        for i in 0..1000 {
            let mut rng = sample_rng(7, i);
            let set = sample_rrr_lt(&g, 2, &mut rng);
            if set.contains(&0) {
                zero += 1;
            }
        }
        let frac = zero as f64 / 1000.0;
        assert!((frac - 0.5).abs() < 0.06, "frac {frac}");
    }

    #[test]
    fn ris_identity_ic() {
        // The RIS identity: P(v in RRR(s)) equals P(s activated | seed {v}).
        // Check on a fixed small graph by two-sided Monte Carlo.
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build(WeightModel::WeightedCascade);
        let trials = 3000u64;
        let mut fwd = 0;
        let mut rev = 0;
        for i in 0..trials {
            let mut rng = sample_rng(8, i);
            if crate::simulate_ic(&g, &[0], &mut rng).contains(&3) {
                fwd += 1;
            }
            let mut rng = sample_rng(9, i);
            if sample_rrr_ic(&g, 3, &mut rng).contains(&0) {
                rev += 1;
            }
        }
        let (pf, pr) = (fwd as f64 / trials as f64, rev as f64 / trials as f64);
        assert!((pf - pr).abs() < 0.04, "forward {pf} vs reverse {pr}");
    }

    #[test]
    fn ris_identity_lt() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build(WeightModel::WeightedCascade);
        let trials = 3000u64;
        let mut fwd = 0;
        let mut rev = 0;
        for i in 0..trials {
            let mut rng = sample_rng(10, i);
            if crate::simulate_lt(&g, &[0], &mut rng).contains(&3) {
                fwd += 1;
            }
            let mut rng = sample_rng(11, i);
            if sample_rrr_lt(&g, 3, &mut rng).contains(&0) {
                rev += 1;
            }
        }
        let (pf, pr) = (fwd as f64 / trials as f64, rev as f64 / trials as f64);
        assert!((pf - pr).abs() < 0.04, "forward {pf} vs reverse {pr}");
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn rejects_bad_source() {
        let g = generators::path(3, WeightModel::WeightedCascade);
        let mut rng = sample_rng(1, 0);
        sample_rrr_ic(&g, 5, &mut rng);
    }
}
