#![warn(missing_docs)]

//! # eim-diffusion
//!
//! The two diffusion models the paper evaluates (§2.1):
//!
//! * **Independent cascade (IC)** — every newly activated vertex gets one
//!   chance to activate each out-neighbor `v` with probability `p_uv`.
//! * **Linear threshold (LT)** — vertex `v` activates once the summed
//!   weights of its active in-neighbors reach a uniform-random threshold
//!   `tau_v`.
//!
//! Plus the two directions influence-maximization needs them in:
//!
//! * forward simulation ([`simulate_ic`], [`simulate_lt`]) and the parallel
//!   Monte-Carlo spread estimator [`estimate_spread`] — used to score seed
//!   sets ("quality of solutions" in §4.1);
//! * reverse sampling ([`sample_rrr_ic`], [`sample_rrr_lt`]) — one random
//!   reverse-reachable set per call, the primitive under all of IMM.

mod ic;
mod lt;
mod rng;
mod rrr;
mod spread;

pub use ic::{simulate_ic, simulate_ic_with_horizon};
pub use lt::{simulate_lt, simulate_lt_with_horizon};
pub use rng::sample_rng;
pub use rrr::{sample_rrr, sample_rrr_ic, sample_rrr_lt};
pub use spread::{activation_frequencies, estimate_spread};

/// Which diffusion process drives sampling and simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiffusionModel {
    /// Independent cascade with per-edge activation probabilities.
    IndependentCascade,
    /// Linear threshold with uniform-random vertex thresholds.
    LinearThreshold,
}

impl std::fmt::Display for DiffusionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffusionModel::IndependentCascade => write!(f, "IC"),
            DiffusionModel::LinearThreshold => write!(f, "LT"),
        }
    }
}
