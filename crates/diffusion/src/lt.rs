//! Forward linear-threshold simulation.

use eim_graph::{Graph, VertexId};
use rand::Rng;

/// Runs one LT diffusion from `seeds` and returns the activated set
/// (ascending). Thresholds `tau_v` are drawn uniformly from `[0, 1]` at the
/// start; vertex `v` activates at step `t` when
/// `sum of p_uv over active in-neighbors u >= tau_v` (§2.1).
pub fn simulate_lt<R: Rng>(graph: &Graph, seeds: &[VertexId], rng: &mut R) -> Vec<VertexId> {
    simulate_lt_with_horizon(graph, seeds, usize::MAX, rng)
}

/// [`simulate_lt`] stopped after at most `horizon` steps — the time-bounded
/// LT variant. `horizon = 0` activates the seeds only.
pub fn simulate_lt_with_horizon<R: Rng>(
    graph: &Graph,
    seeds: &[VertexId],
    horizon: usize,
    rng: &mut R,
) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut active = vec![false; n];
    // Incoming activated weight accumulated so far, per vertex.
    let mut in_weight = vec![0.0f32; n];
    let thresholds: Vec<f32> = (0..n).map(|_| rng.gen::<f32>()).collect();
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in seeds {
        let si = s as usize;
        assert!(si < n, "seed {s} out of range");
        if !active[si] {
            active[si] = true;
            frontier.push(s);
        }
    }
    let mut next = Vec::new();
    let mut steps = 0usize;
    while !frontier.is_empty() && steps < horizon {
        next.clear();
        for &u in &frontier {
            // u just became active: credit its weight to each out-neighbor
            // and check that neighbor's threshold.
            let nbrs = graph.out_neighbors(u);
            let ws = graph.out_weights(u);
            for (&v, &p) in nbrs.iter().zip(ws) {
                let vi = v as usize;
                if !active[vi] {
                    in_weight[vi] += p;
                    if in_weight[vi] >= thresholds[vi] {
                        active[vi] = true;
                        next.push(v);
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        steps += 1;
    }
    (0..n as VertexId).filter(|&v| active[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_rng;
    use eim_graph::{generators, GraphBuilder, WeightModel};

    #[test]
    fn path_activates_fully_under_weighted_cascade() {
        // In-degree 1 everywhere -> each edge weight 1.0 >= any threshold
        // in [0,1)... threshold can be ~1.0 but gen::<f32>() < 1.0 strictly,
        // so weight 1.0 always fires.
        let g = generators::path(12, WeightModel::WeightedCascade);
        let mut rng = sample_rng(3, 0);
        assert_eq!(simulate_lt(&g, &[0], &mut rng), (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn partial_weight_sometimes_insufficient() {
        // v has two in-neighbors each with weight 0.5; seeding only one
        // activates v iff tau_v <= 0.5 — about half the runs.
        let g = GraphBuilder::new(3)
            .edges([(0, 2), (1, 2)])
            .build(WeightModel::WeightedCascade);
        let mut hits = 0;
        for i in 0..400 {
            let mut rng = sample_rng(5, i);
            if simulate_lt(&g, &[0], &mut rng).contains(&2) {
                hits += 1;
            }
        }
        let frac = hits as f64 / 400.0;
        assert!((frac - 0.5).abs() < 0.1, "frac {frac}");
    }

    #[test]
    fn both_in_neighbors_guarantee_activation() {
        let g = GraphBuilder::new(3)
            .edges([(0, 2), (1, 2)])
            .build(WeightModel::WeightedCascade);
        for i in 0..50 {
            let mut rng = sample_rng(6, i);
            assert!(simulate_lt(&g, &[0, 1], &mut rng).contains(&2));
        }
    }

    #[test]
    fn cascades_propagate_transitively() {
        // 0 -> 1 -> 2 with in-degree 1: seeding 0 reaches 2 through the
        // chain in two steps.
        let g = generators::path(3, WeightModel::WeightedCascade);
        let mut rng = sample_rng(7, 0);
        assert_eq!(simulate_lt(&g, &[0], &mut rng), vec![0, 1, 2]);
    }

    #[test]
    fn horizon_truncates_lt() {
        let g = generators::path(8, WeightModel::WeightedCascade);
        let mut rng = sample_rng(2, 0);
        assert_eq!(
            super::simulate_lt_with_horizon(&g, &[0], 2, &mut rng),
            vec![0, 1, 2]
        );
        let mut rng = sample_rng(2, 0);
        assert_eq!(
            super::simulate_lt_with_horizon(&g, &[0], 0, &mut rng),
            vec![0]
        );
    }

    #[test]
    fn empty_seeds() {
        let g = generators::path(5, WeightModel::WeightedCascade);
        let mut rng = sample_rng(7, 0);
        assert!(simulate_lt(&g, &[], &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_seed() {
        let g = generators::path(5, WeightModel::WeightedCascade);
        let mut rng = sample_rng(7, 0);
        simulate_lt(&g, &[77], &mut rng);
    }
}
