//! Deterministic per-sample RNG streams.
//!
//! Every RRR set / Monte-Carlo run gets its own ChaCha8 stream keyed by
//! `(run_seed, sample_index)`. Results then depend only on the logical
//! sample index, never on which thread produced it — the property that makes
//! every experiment in this repo reproducible bit-for-bit under any
//! parallel schedule.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG for logical sample `index` of run `seed`.
pub fn sample_rng(seed: u64, index: u64) -> ChaCha8Rng {
    // SplitMix-style mix keeps nearby (seed, index) pairs decorrelated.
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let mut key = [0u8; 32];
    key[..8].copy_from_slice(&z.to_le_bytes());
    key[8..16].copy_from_slice(&seed.to_le_bytes());
    key[16..24].copy_from_slice(&index.to_le_bytes());
    ChaCha8Rng::from_seed(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_key_same_stream() {
        let mut a = sample_rng(42, 7);
        let mut b = sample_rng(42, 7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_indices_differ() {
        let mut a = sample_rng(42, 7);
        let mut b = sample_rng(42, 8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = sample_rng(1, 0);
        let mut b = sample_rng(2, 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn adjacent_indices_are_decorrelated() {
        // Crude: first draws across consecutive indices should look uniform.
        let draws: Vec<f64> = (0..1000).map(|i| sample_rng(5, i).gen::<f64>()).collect();
        let mean: f64 = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
