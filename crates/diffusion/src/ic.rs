//! Forward independent-cascade simulation.

use eim_graph::{Graph, VertexId};
use rand::Rng;

/// Runs one IC diffusion from `seeds` and returns the set of activated
/// vertices (including the seeds), in ascending order.
///
/// Each activated vertex gets exactly one chance to activate each inactive
/// out-neighbor `v`, succeeding with the edge's probability `p_uv`; the
/// process stops when a round activates nobody (§2.1).
pub fn simulate_ic<R: Rng>(graph: &Graph, seeds: &[VertexId], rng: &mut R) -> Vec<VertexId> {
    simulate_ic_with_horizon(graph, seeds, usize::MAX, rng)
}

/// [`simulate_ic`] stopped after at most `horizon` diffusion steps — the
/// time-bounded IC variant used when influence only counts within a
/// campaign window. `horizon = 0` activates the seeds only.
pub fn simulate_ic_with_horizon<R: Rng>(
    graph: &Graph,
    seeds: &[VertexId],
    horizon: usize,
    rng: &mut R,
) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut active = vec![false; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in seeds {
        let si = s as usize;
        assert!(si < n, "seed {s} out of range");
        if !active[si] {
            active[si] = true;
            frontier.push(s);
        }
    }
    let mut next = Vec::new();
    let mut steps = 0usize;
    while !frontier.is_empty() && steps < horizon {
        next.clear();
        for &u in &frontier {
            let nbrs = graph.out_neighbors(u);
            let ws = graph.out_weights(u);
            for (&v, &p) in nbrs.iter().zip(ws) {
                if !active[v as usize] && rng.gen::<f32>() <= p {
                    active[v as usize] = true;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        steps += 1;
    }
    (0..n as VertexId).filter(|&v| active[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_rng;
    use eim_graph::{generators, GraphBuilder, WeightModel};

    #[test]
    fn deterministic_path_activates_everything() {
        // Path with in-degree 1 everywhere: weighted cascade puts p = 1 on
        // every edge, so seeding the head activates all vertices.
        let g = generators::path(10, WeightModel::WeightedCascade);
        let mut rng = sample_rng(1, 0);
        let act = simulate_ic(&g, &[0], &mut rng);
        assert_eq!(act, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tail_seed_activates_only_itself() {
        let g = generators::path(10, WeightModel::WeightedCascade);
        let mut rng = sample_rng(1, 0);
        assert_eq!(simulate_ic(&g, &[9], &mut rng), vec![9]);
    }

    #[test]
    fn zero_probability_spreads_nothing() {
        let g = generators::complete(6, WeightModel::Uniform(0.0));
        let mut rng = sample_rng(1, 0);
        assert_eq!(simulate_ic(&g, &[2], &mut rng), vec![2]);
    }

    #[test]
    fn probability_one_floods_reachable_component() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (3, 4)])
            .build(WeightModel::Uniform(1.0));
        let mut rng = sample_rng(1, 0);
        assert_eq!(simulate_ic(&g, &[0], &mut rng), vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_seeds_are_harmless() {
        let g = generators::path(5, WeightModel::WeightedCascade);
        let mut rng = sample_rng(1, 0);
        assert_eq!(
            simulate_ic(&g, &[0, 0, 0], &mut rng),
            (0..5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_seed_set_activates_nothing() {
        let g = generators::path(5, WeightModel::WeightedCascade);
        let mut rng = sample_rng(1, 0);
        assert!(simulate_ic(&g, &[], &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_seed() {
        let g = generators::path(5, WeightModel::WeightedCascade);
        let mut rng = sample_rng(1, 0);
        simulate_ic(&g, &[99], &mut rng);
    }

    #[test]
    fn horizon_truncates_the_cascade() {
        let g = generators::path(10, WeightModel::WeightedCascade);
        let mut rng = sample_rng(1, 0);
        assert_eq!(
            super::simulate_ic_with_horizon(&g, &[0], 3, &mut rng),
            vec![0, 1, 2, 3]
        );
        let mut rng = sample_rng(1, 0);
        assert_eq!(
            super::simulate_ic_with_horizon(&g, &[0], 0, &mut rng),
            vec![0]
        );
        // A horizon past the diameter changes nothing.
        let mut rng = sample_rng(1, 0);
        assert_eq!(
            super::simulate_ic_with_horizon(&g, &[0], 100, &mut rng),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_chance_per_edge() {
        // Star out of 0 with uniform p = 0.5: expected activations ~ half
        // the leaves; crucially never more than one attempt per leaf.
        let g = generators::star_out(201, WeightModel::Uniform(0.5));
        let mut total = 0usize;
        for i in 0..200 {
            let mut rng = sample_rng(9, i);
            total += simulate_ic(&g, &[0], &mut rng).len() - 1;
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 100.0).abs() < 10.0, "mean {mean}");
    }
}
