//! Solution-quality validation: IMM-based engines must match the classic
//! greedy-MC algorithm (the (1 - 1/e - eps) gold standard) within
//! Monte-Carlo noise on small graphs — the §4.1 claim that "quality of
//! solutions provided by eIM remains the same".

use eim::baselines::greedy_mc;
use eim::diffusion::estimate_spread;
use eim::graph::generators;
use eim::prelude::*;

fn spread(graph: &Graph, seeds: &[u32], model: DiffusionModel) -> f64 {
    estimate_spread(graph, seeds, model, 1_500, 0xabc)
}

fn check_quality(graph: &Graph, k: usize, model: DiffusionModel, tolerance: f64) {
    let greedy = greedy_mc(graph, k, model, 150, 77);
    let greedy_spread = spread(graph, &greedy.seeds, model);
    let eim = EimBuilder::new(graph)
        .k(k)
        .epsilon(0.15)
        .model(model)
        .seed(42)
        .run()
        .expect("fits");
    let eim_spread = spread(graph, &eim.seeds, model);
    assert!(
        eim_spread >= (1.0 - tolerance) * greedy_spread,
        "{model}: eIM {eim_spread:.1} vs greedy {greedy_spread:.1} (seeds {:?} vs {:?})",
        eim.seeds,
        greedy.seeds
    );
}

#[test]
fn ic_quality_on_scale_free_graph() {
    let graph = generators::barabasi_albert(400, 3, WeightModel::WeightedCascade, 21);
    check_quality(&graph, 5, DiffusionModel::IndependentCascade, 0.08);
}

#[test]
fn lt_quality_on_scale_free_graph() {
    let graph = generators::barabasi_albert(400, 3, WeightModel::WeightedCascade, 21);
    check_quality(&graph, 5, DiffusionModel::LinearThreshold, 0.08);
}

#[test]
fn ic_quality_on_rmat() {
    let graph = generators::rmat(
        300,
        2_400,
        generators::RmatParams::GRAPH500,
        WeightModel::WeightedCascade,
        5,
    );
    check_quality(&graph, 4, DiffusionModel::IndependentCascade, 0.08);
}

#[test]
fn source_elimination_does_not_hurt_quality() {
    let graph = generators::rmat(
        350,
        2_000,
        generators::RmatParams::GRAPH500,
        WeightModel::WeightedCascade,
        13,
    );
    let model = DiffusionModel::IndependentCascade;
    let with = EimBuilder::new(&graph)
        .k(5)
        .epsilon(0.2)
        .source_elimination(true)
        .seed(3)
        .run()
        .unwrap();
    let without = EimBuilder::new(&graph)
        .k(5)
        .epsilon(0.2)
        .source_elimination(false)
        .seed(3)
        .run()
        .unwrap();
    let s_with = spread(&graph, &with.seeds, model);
    let s_without = spread(&graph, &without.seeds, model);
    assert!(
        s_with >= 0.93 * s_without,
        "elimination degraded spread: {s_with:.1} vs {s_without:.1}"
    );
}

#[test]
fn all_gpu_engines_match_greedy_on_star() {
    // Unambiguous optimum: the out-star hub.
    let graph = generators::star_out(150, WeightModel::WeightedCascade);
    let greedy = greedy_mc(&graph, 1, DiffusionModel::IndependentCascade, 50, 3);
    assert_eq!(greedy.seeds, vec![0]);
    for packed in [false, true] {
        let r = EimBuilder::new(&graph)
            .k(1)
            .epsilon(0.3)
            .packed(packed)
            .seed(8)
            .run()
            .unwrap();
        assert_eq!(r.seeds, vec![0], "packed = {packed}");
    }
}
