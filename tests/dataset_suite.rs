//! Smoke suite over all 16 registered networks at tiny scale: generation,
//! packing, and a full eIM run succeed on each, and dataset-level structure
//! matches the recipe intent.

use eim::bitpack::PackedCsc;
use eim::graph::{GraphStats, DATASETS};
use eim::prelude::*;

const SCALE: f64 = 1.0 / 8192.0;

#[test]
fn all_sixteen_networks_generate_and_run() {
    for d in &DATASETS {
        let g = d.generate(SCALE, WeightModel::WeightedCascade, 7);
        assert!(g.num_vertices() >= 64, "{}", d.abbrev);
        assert!(g.num_edges() > 0, "{}", d.abbrev);
        let r = EimBuilder::new(&g)
            .k(3)
            .epsilon(0.4)
            .seed(1)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", d.abbrev));
        assert_eq!(r.seeds.len(), 3, "{}", d.abbrev);
    }
}

#[test]
fn packing_saves_on_every_network() {
    for d in &DATASETS {
        let g = d.generate(SCALE, WeightModel::WeightedCascade, 9);
        let packed = PackedCsc::from_graph(&g);
        let rep = packed.memory_report(g.csc());
        assert!(
            rep.saved_fraction() > 0.05,
            "{}: saved only {:.1}%",
            d.abbrev,
            rep.saved_fraction() * 100.0
        );
    }
}

#[test]
fn periphery_ordering_shows_in_singleton_rates() {
    // EE (72% periphery) must produce a much higher zero-in-degree rate
    // than CO (2%), which is what drives their Figure 5 positions.
    let ee = eim::graph::Dataset::by_abbrev("EE").unwrap();
    let co = eim::graph::Dataset::by_abbrev("CO").unwrap();
    let g_ee = ee.generate(1.0 / 2048.0, WeightModel::WeightedCascade, 3);
    let g_co = co.generate(1.0 / 2048.0, WeightModel::WeightedCascade, 3);
    let z_ee = GraphStats::of(&g_ee).zero_in_fraction();
    let z_co = GraphStats::of(&g_co).zero_in_fraction();
    assert!(z_ee > z_co + 0.2, "EE {z_ee:.2} vs CO {z_co:.2}");
}

#[test]
fn web_graphs_are_more_skewed_than_p2p() {
    let wb = eim::graph::Dataset::by_abbrev("WB").unwrap();
    let pg = eim::graph::Dataset::by_abbrev("PG").unwrap();
    let g_wb = wb.generate(1.0 / 2048.0, WeightModel::WeightedCascade, 3);
    let g_pg = pg.generate(1.0 / 2048.0, WeightModel::WeightedCascade, 3);
    let gini_wb = GraphStats::of(&g_wb).in_degree.gini;
    let gini_pg = GraphStats::of(&g_pg).in_degree.gini;
    assert!(gini_wb > gini_pg, "WB {gini_wb:.2} vs PG {gini_pg:.2}");
}
