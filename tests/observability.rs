//! Differential tests for the live-observability stack: the phase-scoped
//! metrics snapshot stream and the `eim top` dashboard.
//!
//! Three invariants are locked down end to end:
//!
//! * **Reconciliation** — the interval deltas a run streams out must sum
//!   exactly back to the run's final metrics registry: the accumulator's
//!   rebuilt state hashes to the digest the final record embeds, for every
//!   simulated engine and for streaming-update runs.
//! * **Determinism** — two identical runs write byte-identical snapshot
//!   streams, and `eim top --once --plain` renders byte-identical frames
//!   from them.
//! * **Schedule invariance** — the stream is keyed to the simulated clock,
//!   so the rayon thread count must not change a single byte of it.

use std::io::BufReader;
use std::process::Command;

use eim::core::{EimEngine, ScanStrategy};
use eim::gpusim::{Device, DeviceSpec, MetricsRegistry, RunTrace, SnapshotAccumulator};
use eim::imm::{run_imm_recovering, ImmEngine as _, RecoveryPolicy};
use eim::prelude::*;

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("eim_observability_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the CLI with a snapshot stream attached and returns the stream's
/// bytes. `tag` keeps concurrent tests from clobbering each other's files.
fn run_cli_stream(tag: &str, extra: &[&str]) -> Vec<u8> {
    let path = temp_dir().join(format!("{tag}.jsonl"));
    let out = Command::new(env!("CARGO_BIN_EXE_eim"))
        .args([
            "--dataset",
            "WV",
            "--scale",
            "0.02",
            "--k",
            "3",
            "--eps",
            "0.4",
            "--seed",
            "11",
            "--snapshot-stream",
            path.to_str().unwrap(),
            "--snapshot-interval-us",
            "50",
        ])
        .args(extra)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{tag}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read(&path).expect("snapshot stream written")
}

fn accumulate(bytes: &[u8]) -> SnapshotAccumulator {
    let mut acc = SnapshotAccumulator::new();
    acc.push_reader(BufReader::new(bytes))
        .expect("stream parses");
    acc
}

/// Every engine's stream must carry a header, reach a final record, and
/// reconcile: the summed deltas hash to the embedded cumulative digest.
#[test]
fn snapshot_streams_reconcile_for_every_engine() {
    for (engine, extra) in [
        ("eim", &[][..]),
        ("gim", &[]),
        ("curipples", &[]),
        ("multigpu", &["--devices", "2"]),
    ] {
        let bytes = run_cli_stream(
            &format!("reconcile_{engine}"),
            &[&["--engine", engine][..], extra].concat(),
        );
        let acc = accumulate(&bytes);
        assert!(acc.header.is_some(), "{engine}: stream missing header");
        let digest = acc.reconcile().unwrap_or_else(|e| panic!("{engine}: {e}"));
        assert_eq!(digest.len(), 16, "{engine}: digest is fnv64 hex");
        assert!(
            !acc.flat.kernels.is_empty(),
            "{engine}: no kernel profiles in the rebuilt state"
        );
    }
}

/// Streaming-update runs fold per-batch invalidation counters into the
/// stream under the `stream-update` phase; they must reconcile too.
#[test]
fn streaming_update_stream_reconciles_and_carries_phase() {
    let bytes = run_cli_stream(
        "reconcile_streaming",
        &[
            "--engine",
            "eim",
            "--updates",
            "batches=3,edges=12,insert=0.5,seed=1",
        ],
    );
    let acc = accumulate(&bytes);
    acc.reconcile().expect("streaming stream reconciles");
    let batches: u64 = acc
        .flat
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("eim_stream_batches_total"))
        .map(|(_, &v)| v)
        .sum();
    assert_eq!(batches, 3, "one batch counter increment per update batch");
    assert!(
        acc.flat
            .counters
            .keys()
            .any(|k| k.starts_with("eim_stream_invalidated_slots_total")
                && k.contains("phase=\"stream-update\"")),
        "invalidation counters must carry the stream-update phase label"
    );
}

/// Double runs: byte-identical streams, byte-identical `eim top` frames,
/// and a clean `--check` reconciliation exit.
#[test]
fn double_runs_and_top_frames_are_byte_identical() {
    let a = run_cli_stream("det_a", &["--engine", "eim"]);
    let b = run_cli_stream("det_b", &["--engine", "eim"]);
    assert!(!a.is_empty());
    assert_eq!(a, b, "double runs must write byte-identical streams");

    let frame = |tag: &str, bytes: &[u8], check: bool| {
        let path = temp_dir().join(format!("{tag}.jsonl"));
        std::fs::write(&path, bytes).unwrap();
        let mut args = vec![
            "top",
            "--replay",
            path.to_str().unwrap(),
            "--once",
            "--plain",
        ];
        if check {
            args.push("--check");
        }
        let out = Command::new(env!("CARGO_BIN_EXE_eim"))
            .args(&args)
            .output()
            .expect("top runs");
        assert!(
            out.status.success(),
            "top {tag}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let fa = frame("det_a_frame", &a, false);
    let fb = frame("det_b_frame", &b, false);
    assert!(!fa.is_empty());
    assert_eq!(fa, fb, "top frames must be byte-identical");
    let checked = frame("det_a_checked", &a, true);
    assert!(
        String::from_utf8_lossy(&checked).contains("reconciliation OK"),
        "--check must report reconciliation OK"
    );
}

/// Runs the eIM engine in-process under a rayon pool of `threads` with a
/// snapshot stream attached, and returns the stream bytes. Provenance is
/// pinned (`Value::Null`) so only the metrics content is compared.
fn run_engine_stream(seed: u64, threads: usize) -> Vec<u8> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let path = temp_dir().join(format!("pool_{seed}_{threads}.jsonl"));
        let graph =
            eim::graph::generators::barabasi_albert(400, 3, WeightModel::WeightedCascade, seed);
        let config = ImmConfig::paper_default()
            .with_k(4)
            .with_epsilon(0.4)
            .with_seed(seed);
        let registry = MetricsRegistry::new();
        registry
            .start_snapshot_stream(
                Box::new(std::fs::File::create(&path).unwrap()),
                25,
                serde_json::Value::Null,
            )
            .unwrap();
        let trace = RunTrace::disabled().with_metrics(registry.sink().with_engine("eim"));
        let device = Device::with_run_trace(DeviceSpec::test_small(), trace.clone());
        let mut engine =
            EimEngine::new(&graph, config, device, ScanStrategy::ThreadPerSet).expect("fits");
        run_imm_recovering(&mut engine, &config, &RecoveryPolicy::abort(), &trace).expect("runs");
        let elapsed = engine.elapsed_us();
        registry.finish_snapshot_stream(elapsed).unwrap();
        std::fs::read(&path).unwrap()
    })
}

/// The stream is keyed to the simulated clock, not the host schedule: a
/// 1-thread and a 4-thread pool must produce the same bytes, and the
/// rebuilt state must equal the live registry's snapshot.
#[test]
fn stream_invariant_under_rayon_thread_count() {
    let single = run_engine_stream(17, 1);
    assert!(!single.is_empty());
    let parallel = run_engine_stream(17, 4);
    assert_eq!(single, parallel, "thread count changed the stream");
    let acc = accumulate(&single);
    assert!(acc.records >= 2, "expected interval + final records");
    acc.reconcile().expect("pooled stream reconciles");
}

/// In-process cross-check of the strongest form of the invariant: the
/// accumulator's rebuilt cumulative state must serialize identically to
/// the live registry's own snapshot — field for field, not just digests.
#[test]
fn rebuilt_state_equals_live_registry_snapshot() {
    let path = temp_dir().join("live_vs_rebuilt.jsonl");
    let graph = eim::graph::generators::barabasi_albert(400, 3, WeightModel::WeightedCascade, 5);
    let config = ImmConfig::paper_default()
        .with_k(4)
        .with_epsilon(0.4)
        .with_seed(5);
    let registry = MetricsRegistry::new();
    registry
        .start_snapshot_stream(
            Box::new(std::fs::File::create(&path).unwrap()),
            25,
            serde_json::Value::Null,
        )
        .unwrap();
    let trace = RunTrace::disabled().with_metrics(registry.sink().with_engine("eim"));
    let device = Device::with_run_trace(DeviceSpec::test_small(), trace.clone());
    let mut engine =
        EimEngine::new(&graph, config, device, ScanStrategy::ThreadPerSet).expect("fits");
    run_imm_recovering(&mut engine, &config, &RecoveryPolicy::abort(), &trace).expect("runs");
    let elapsed = engine.elapsed_us();
    registry.finish_snapshot_stream(elapsed).unwrap();

    let acc = accumulate(&std::fs::read(&path).unwrap());
    let rebuilt = serde_json::to_string(&acc.cumulative_value()).unwrap();
    let live = serde_json::to_string(&registry.snapshot_value()).unwrap();
    assert_eq!(rebuilt, live, "rebuilt state diverged from the registry");
}
