//! Fault injection and graceful degradation, end to end.
//!
//! The contract under test: a run with deterministic injected faults either
//! converges to *exactly* the clean run's seed set (recovery worked and the
//! degradation was answer-preserving) or fails with a typed, non-panicking
//! error — never a silently different answer.

use std::process::Command;
use std::sync::Arc;

use eim::baselines::{CuRipplesEngine, HostSpec};
use eim::core::EimBuilder;
use eim::gpusim::{Device, DeviceSpec, FaultPlan, FaultSpec, RunTrace, TransferDirection};
use eim::graph::{generators, Graph, WeightModel};
use eim::imm::{run_imm_recovering, EngineError, ImmConfig, ImmEngine as _, RecoveryPolicy};
use proptest::prelude::*;

fn graph() -> Graph {
    generators::rmat(
        300,
        1_800,
        generators::RmatParams::GRAPH500,
        WeightModel::WeightedCascade,
        4,
    )
}

fn clean_run(g: &Graph) -> (Vec<u32>, usize) {
    let r = EimBuilder::new(g)
        .k(3)
        .epsilon(0.35)
        .seed(11)
        .run()
        .expect("clean run fits the default device");
    (r.seeds, r.num_sets)
}

#[test]
fn faulted_retry_run_matches_clean_run_exactly() {
    let g = graph();
    let (clean_seeds, clean_sets) = clean_run(&g);
    let spec = FaultSpec::parse("seed=42,kernel=0.3,transfer=0.2").unwrap();
    let r = EimBuilder::new(&g)
        .k(3)
        .epsilon(0.35)
        .seed(11)
        .faults(spec)
        .recovery(RecoveryPolicy::retry().with_max_retries(12))
        .run()
        .expect("retry absorbs transient faults");
    assert!(
        r.recovery.retries > 0,
        "faults were injected but not retried"
    );
    assert_eq!(r.seeds, clean_seeds);
    assert_eq!(r.num_sets, clean_sets);
}

#[test]
fn pressure_window_with_degrade_matches_clean_run() {
    let g = graph();
    let (clean_seeds, clean_sets) = clean_run(&g);
    // A long pressure window squeezes usable memory to 5% on a small
    // device: the store must spill to host, and the answer must not move.
    let spec = FaultSpec::parse("seed=7,kernel=0.2,pressure=0.95@2:60").unwrap();
    let r = EimBuilder::new(&g)
        .k(3)
        .epsilon(0.35)
        .seed(11)
        .device(DeviceSpec::rtx_a6000_with_mem(2 << 20))
        .faults(spec)
        .recovery(RecoveryPolicy::degrade())
        .run()
        .expect("degrade mode absorbs memory pressure");
    assert_eq!(r.seeds, clean_seeds);
    assert_eq!(r.num_sets, clean_sets);
    assert!(!r.recovery.is_empty(), "pressure left no recovery trace");
}

#[test]
fn abort_policy_surfaces_the_first_fault_as_an_error() {
    let g = graph();
    let spec = FaultSpec::parse("seed=42,kernel=0.95").unwrap();
    let err = EimBuilder::new(&g)
        .k(3)
        .epsilon(0.35)
        .seed(11)
        .faults(spec)
        .run()
        .expect_err("near-certain faults with no recovery must fail");
    assert!(matches!(err, EngineError::Fault(_)), "got {err:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any fault schedule either converges to the clean answer or fails
    /// with a typed error — across injection seeds and probabilities.
    #[test]
    fn any_fault_seed_converges_or_fails_typed(
        fault_seed in any::<u64>(),
        kernel_pct in 0u32..80,
        transfer_pct in 0u32..50,
    ) {
        let g = generators::rmat(
            200,
            1_200,
            generators::RmatParams::MILD,
            WeightModel::WeightedCascade,
            6,
        );
        let clean = EimBuilder::new(&g)
            .k(2)
            .epsilon(0.45)
            .seed(3)
            .run()
            .expect("clean run");
        let spec = FaultSpec::parse(&format!(
            "seed={fault_seed},kernel=0.{kernel_pct:02},transfer=0.{transfer_pct:02}"
        )).unwrap();
        let result = EimBuilder::new(&g)
            .k(2)
            .epsilon(0.45)
            .seed(3)
            .faults(spec)
            .recovery(RecoveryPolicy::retry())
            .run();
        match result {
            Ok(r) => {
                prop_assert_eq!(r.seeds, clean.seeds);
                prop_assert_eq!(r.num_sets, clean.num_sets);
            }
            Err(EngineError::RetriesExhausted { attempts, .. }) => {
                prop_assert!(attempts > 0);
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
        }
    }
}

// ---- Copy-stream overlap properties ----

/// Drives a raw device through `ops` = (compute weight, transfer bytes)
/// pairs in the engines' canonical enqueue → compute → wait shape, retrying
/// faulted enqueues. Returns the final simulated time and the fault count.
fn replay_ops(ops: &[(u8, u32)], serial: bool, fault_spec: Option<&str>) -> (f64, u64) {
    let device = {
        let d = Device::new(DeviceSpec::rtx_a6000()).with_copy_overlap(!serial);
        match fault_spec {
            Some(s) => d.with_fault_plan(Arc::new(FaultPlan::new(FaultSpec::parse(s).unwrap()))),
            None => d,
        }
    };
    let mut stream = device.copy_stream();
    let mut faults = 0u64;
    for &(compute, bytes) in ops {
        let event = loop {
            match stream.checked_enqueue(
                &device,
                bytes as usize + 1,
                TransferDirection::DeviceToHost,
            ) {
                Ok(ev) => break ev,
                Err(_) => {
                    faults += 1;
                    assert!(faults < 100_000, "fault schedule never clears");
                }
            }
        };
        device.advance_clock(compute as f64 * 3.0);
        stream.wait_event(&device, &event);
    }
    stream.synchronize(&device);
    (device.clock().now_us(), faults)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For arbitrary transfer/compute cost mixes and fault seeds: the
    /// overlapped schedule never takes longer than the forced-serial one,
    /// both modes draw the identical fault sequence, and faulted replays are
    /// bit-for-bit deterministic.
    #[test]
    fn overlapped_time_never_exceeds_serialized(
        ops in prop::collection::vec((0u8..50, 0u32..(1 << 20)), 1..20),
        fault_seed in any::<u64>(),
        transfer_pct in 0u32..60,
    ) {
        let spec = format!("seed={fault_seed},transfer=0.{transfer_pct:02}");
        for fault_spec in [None, Some(spec.as_str())] {
            let (t_overlap, f_overlap) = replay_ops(&ops, false, fault_spec);
            let (t_serial, f_serial) = replay_ops(&ops, true, fault_spec);
            prop_assert!(
                t_overlap <= t_serial + 1e-9,
                "overlap {t_overlap} us > serial {t_serial} us ({fault_spec:?})"
            );
            prop_assert_eq!(
                f_overlap, f_serial,
                "overlap changed the fault sequence"
            );
            // Same ops, same schedule: replays are bit-exact.
            let (t2, f2) = replay_ops(&ops, false, fault_spec);
            prop_assert_eq!(t_overlap.to_bits(), t2.to_bits());
            prop_assert_eq!(f_overlap, f2);
        }
    }

    /// A stream that waits on every event before doing anything else
    /// degenerates *exactly* (bit-for-bit) to the forced-serial schedule.
    #[test]
    fn waiting_on_every_event_degenerates_to_serial(
        ops in prop::collection::vec((0u8..50, 0u32..(1 << 20)), 1..20),
    ) {
        let run = |serial: bool| -> f64 {
            let device = Device::new(DeviceSpec::rtx_a6000()).with_copy_overlap(!serial);
            let mut stream = device.copy_stream();
            for &(compute, bytes) in &ops {
                let ev = stream.enqueue(
                    &device,
                    bytes as usize + 1,
                    TransferDirection::HostToDevice,
                );
                stream.wait_event(&device, &ev);
                device.advance_clock(compute as f64 * 3.0);
            }
            device.clock().now_us()
        };
        prop_assert_eq!(run(false).to_bits(), run(true).to_bits());
    }
}

#[test]
fn curipples_faulted_async_offloads_replay_deterministically() {
    // cuRipples is the engine whose per-batch d2h offload rides the copy
    // stream *without* an immediate wait; a faulted offload must roll the
    // batch back and the retry must replay to the identical schedule.
    let g = graph();
    let c = ImmConfig::paper_default()
        .with_k(3)
        .with_epsilon(0.35)
        .with_seed(11)
        .with_packed(false)
        .with_source_elimination(false);
    let spec = FaultSpec::parse("seed=42,transfer=0.35").unwrap();
    let run = |faulted: bool| {
        let mut d = Device::new(DeviceSpec::rtx_a6000());
        if faulted {
            d = d.with_fault_plan(Arc::new(FaultPlan::new(spec.clone())));
        }
        let mut e = CuRipplesEngine::new(&g, c, d, HostSpec::default()).unwrap();
        let r = run_imm_recovering(
            &mut e,
            &c,
            &RecoveryPolicy::retry().with_max_retries(30),
            &RunTrace::disabled(),
        )
        .expect("retry absorbs transient transfer faults");
        (
            r.seeds,
            r.num_sets,
            e.elapsed_us().to_bits(),
            r.recovery.retries,
        )
    };
    let a = run(true);
    let b = run(true);
    assert!(a.3 > 0, "fault schedule drew no transfer fault — dead test");
    assert_eq!(a, b, "faulted replay diverged");
    let clean = run(false);
    assert_eq!(a.0, clean.0, "recovery changed the answer");
    assert_eq!(a.1, clean.1);
}

// ---- CLI-level checks (the same contract through the binary) ----

fn eim_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eim"))
}

const CLI_BASE: [&str; 10] = [
    "--dataset",
    "WV",
    "--scale",
    "0.02",
    "--k",
    "3",
    "--eps",
    "0.3",
    "--seed",
    "9",
];

#[test]
fn cli_faulted_run_reports_recovery_and_matches_clean_seeds() {
    let clean = eim_cli().args(CLI_BASE).arg("--json").output().unwrap();
    assert!(clean.status.success());
    let clean_v: serde_json::Value = serde_json::from_slice(&clean.stdout).unwrap();

    let faulted = eim_cli()
        .args(CLI_BASE)
        .args([
            "--inject-faults",
            "seed=42,kernel=0.5",
            "--recovery",
            "retry",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(
        faulted.status.success(),
        "{}",
        String::from_utf8_lossy(&faulted.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&faulted.stdout).unwrap();
    assert!(v["recovery"]["retries"].as_u64().unwrap() > 0);
    assert_eq!(v["seeds"], clean_v["seeds"]);
}

#[test]
fn cli_fault_abort_is_a_structured_nonzero_exit() {
    let out = eim_cli()
        .args(CLI_BASE)
        .args(["--inject-faults", "seed=41,kernel=0.99", "--json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["error"]["kind"], "sim_fault");
    assert_eq!(v["error"]["fault_kind"], "kernel_launch");
    assert!(v["error"]["message"]
        .as_str()
        .unwrap()
        .contains("injected kernel-launch fault"));
}

#[test]
fn cli_rejects_bad_fault_specs() {
    for bad in [
        "kernel=1.0",
        "seed=x",
        "pressure=0.5@9",
        "nonsense",
        "device_fail=1.0",
        "link_flap=-0.1",
        "straggler=0.5@0:4", // multiplier must be >= 1
        "straggler=2.0@8:2", // empty window
    ] {
        let out = eim_cli()
            .args(CLI_BASE)
            .args(["--inject-faults", bad])
            .output()
            .unwrap();
        assert!(!out.status.success(), "spec {bad:?} should be rejected");
    }
}

// ---- the three fail-stop / degradation classes ----

#[test]
fn link_flap_retry_matches_clean_and_costs_bandwidth() {
    // A flapping link drops staging enqueues (retried) and degrades the
    // link to a lower bandwidth tier each flap: the answer must not move,
    // and the degraded link must cost simulated time. Flaps are drawn on
    // the multi-GPU partition-staging path.
    use eim::core::MultiGpuEimEngine;
    use eim::imm::run_imm;

    let g = graph();
    let c = ImmConfig::paper_default()
        .with_k(3)
        .with_epsilon(0.35)
        .with_seed(11);
    let spec_dev = DeviceSpec::rtx_a6000_with_mem(256 << 20);
    let (clean_seeds, clean_sets, clean_time) = {
        let mut e = MultiGpuEimEngine::new(&g, c, spec_dev, 4).unwrap();
        let r = run_imm(&mut e, &c).unwrap();
        (r.seeds, r.num_sets, e.elapsed_us())
    };
    let spec = FaultSpec::parse("seed=42,link_flap=0.2").unwrap();
    let mut e = MultiGpuEimEngine::new(&g, c, spec_dev, 4)
        .unwrap()
        .with_faults(&spec);
    let r = run_imm_recovering(
        &mut e,
        &c,
        &RecoveryPolicy::retry().with_max_retries(20),
        &RunTrace::disabled(),
    )
    .expect("retry absorbs link flaps");
    assert!(r.recovery.retries > 0, "no flap was drawn — dead test");
    assert_eq!(r.seeds, clean_seeds);
    assert_eq!(r.num_sets, clean_sets);
    assert!(
        e.elapsed_us() > clean_time,
        "degraded link cost no time ({} vs {})",
        e.elapsed_us(),
        clean_time
    );
}

#[test]
fn device_fail_on_a_single_device_run_is_unrecoverable_but_typed() {
    // With one device there are no survivors to re-shard onto: the run
    // must end in a typed exhaustion, never a panic or a wrong answer.
    let g = graph();
    let spec = FaultSpec::parse("seed=1,device_fail=0.999").unwrap();
    let err = EimBuilder::new(&g)
        .k(3)
        .epsilon(0.35)
        .seed(11)
        .faults(spec)
        .recovery(RecoveryPolicy::retry())
        .run()
        .expect_err("a lone fail-stopped device cannot recover");
    assert!(
        matches!(err, EngineError::RetriesExhausted { .. }),
        "got {err:?}"
    );
}

#[test]
fn straggler_window_preserves_the_answer_and_slows_the_clock() {
    let g = graph();
    let (clean_seeds, clean_sets) = clean_run(&g);
    let clean_time = EimBuilder::new(&g)
        .k(3)
        .epsilon(0.35)
        .seed(11)
        .run()
        .unwrap()
        .sim_time_us();
    let spec = FaultSpec::parse("seed=7,straggler=10.0@0:32").unwrap();
    let r = EimBuilder::new(&g)
        .k(3)
        .epsilon(0.35)
        .seed(11)
        .faults(spec)
        .recovery(RecoveryPolicy::retry())
        .run()
        .expect("a straggler never faults");
    assert_eq!(r.seeds, clean_seeds);
    assert_eq!(r.num_sets, clean_sets);
    assert!(
        r.sim_time_us() > clean_time,
        "10x straggler window cost no time ({} vs {})",
        r.sim_time_us(),
        clean_time
    );
}
