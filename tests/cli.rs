//! Integration tests for the `eim` command-line binary.

use std::io::Write;
use std::process::Command;

fn eim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eim"))
}

fn write_edge_list() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("eim_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chain.txt");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "# tiny chain with a hub").unwrap();
    for i in 0..20 {
        writeln!(f, "{} {}", i, i + 1).unwrap();
        writeln!(f, "100 {}", i).unwrap();
    }
    path
}

#[test]
fn runs_on_a_snap_file() {
    let path = write_edge_list();
    let out = eim()
        .args([
            "--input",
            path.to_str().unwrap(),
            "--k",
            "2",
            "--eps",
            "0.4",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("seeds:"), "{stdout}");
    assert!(stdout.contains("coverage:"));
}

#[test]
fn json_output_is_valid_json_with_expected_fields() {
    let out = eim()
        .args([
            "--dataset",
            "WV",
            "--scale",
            "0.01",
            "--k",
            "3",
            "--eps",
            "0.4",
            "--json",
            "--spread-sims",
            "50",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("stdout parses as JSON");
    assert_eq!(v["k"], 3);
    assert_eq!(v["engine"], "eim");
    assert_eq!(v["seeds"].as_array().unwrap().len(), 3);
    assert!(v["estimated_spread"].as_f64().unwrap() >= 3.0);
    assert!(v["rrr_sets"].as_u64().unwrap() > 0);
}

#[test]
fn every_engine_flag_works() {
    for engine in ["eim", "gim", "curipples", "cpu", "multigpu"] {
        let out = eim()
            .args([
                "--dataset",
                "PG",
                "--scale",
                "0.004",
                "--k",
                "2",
                "--eps",
                "0.5",
                "--engine",
                engine,
                "--json",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{engine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
        assert_eq!(v["engine"], engine);
        assert_eq!(v["seeds"].as_array().unwrap().len(), 2);
    }
}

#[test]
fn engines_agree_on_seeds_via_cli() {
    let seeds_for = |engine: &str| -> serde_json::Value {
        let out = eim()
            .args([
                "--dataset",
                "SE",
                "--scale",
                "0.004",
                "--k",
                "3",
                "--eps",
                "0.4",
                "--engine",
                engine,
                "--no-pack",
                "--no-elim",
                "--json",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        serde_json::from_slice::<serde_json::Value>(&out.stdout).unwrap()["seeds"].clone()
    };
    assert_eq!(seeds_for("eim"), seeds_for("gim"));
    assert_eq!(seeds_for("eim"), seeds_for("curipples"));
}

#[test]
fn multigpu_engine_matches_eim_seeds_via_cli() {
    let run = |engine: &str, extra: &[&str]| -> serde_json::Value {
        let mut args = vec![
            "--dataset",
            "SE",
            "--scale",
            "0.004",
            "--k",
            "3",
            "--eps",
            "0.4",
            "--engine",
            engine,
            "--json",
        ];
        args.extend_from_slice(extra);
        let out = eim().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{engine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        serde_json::from_slice::<serde_json::Value>(&out.stdout).unwrap()["seeds"].clone()
    };
    let single = run("eim", &[]);
    assert_eq!(single, run("multigpu", &["--devices", "2"]));
    assert_eq!(single, run("multigpu", &["--devices", "4"]));
}

#[test]
fn bad_usage_exits_nonzero() {
    // No input source at all.
    let out = eim().args(["--k", "3"]).output().unwrap();
    assert!(!out.status.success());
    // Two input sources.
    let out = eim()
        .args(["--dataset", "WV", "--input", "x.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Unknown dataset.
    let out = eim().args(["--dataset", "NOPE"]).output().unwrap();
    assert!(!out.status.success());
    // Missing file.
    let out = eim()
        .args(["--input", "/nonexistent/file.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn oom_is_a_clean_error_not_a_panic() {
    // 0.1 MB cannot hold a ~2 MB graph: the run must fail with a clear
    // message on stderr and a nonzero exit, not a panic.
    let out = eim()
        .args([
            "--dataset",
            "WV",
            "--scale",
            "0.2",
            "--k",
            "3",
            "--eps",
            "0.4",
            "--device-mem-mb",
            "0.1",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("out of device memory"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn oom_under_json_is_a_structured_error() {
    let out = eim()
        .args([
            "--dataset",
            "WV",
            "--scale",
            "0.2",
            "--k",
            "3",
            "--eps",
            "0.4",
            "--device-mem-mb",
            "0.1",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("stdout parses as JSON");
    assert_eq!(v["error"]["kind"], "out_of_memory");
    assert!(v["error"]["requested_bytes"].as_u64().unwrap() > 0);
    assert!(v["error"]["capacity_bytes"].as_u64().unwrap() > 0);
    assert!(v["error"]["message"]
        .as_str()
        .unwrap()
        .contains("out of device memory"));
}

#[test]
fn json_output_carries_telemetry_summary() {
    let out = eim()
        .args([
            "--dataset",
            "WV",
            "--scale",
            "0.01",
            "--k",
            "2",
            "--eps",
            "0.5",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let t = &v["telemetry"];
    assert!(t["kernel_launches"].as_u64().unwrap() > 0);
    assert!(t["peak_device_bytes"].as_u64().unwrap() > 0);
    assert!(t["phase_us"]["estimation"].as_f64().unwrap() >= 0.0);
    assert_eq!(
        t["dropped_events"].as_u64(),
        Some(0),
        "uncapped run drops nothing"
    );
}

#[test]
fn trace_event_cap_bounds_the_event_stream_but_keeps_counters_exact() {
    let dir = std::env::temp_dir().join("eim_cli_cap_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("capped.trace.json");
    let out = eim()
        .args([
            "--dataset",
            "WV",
            "--scale",
            "0.01",
            "--k",
            "3",
            "--eps",
            "0.5",
            "--json",
            "--trace",
            trace_path.to_str().unwrap(),
            "--trace-event-cap",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let t = &v["telemetry"];
    // Counters are exact even though the event stream is truncated.
    assert!(t["kernel_launches"].as_u64().unwrap() > 2);
    assert!(t["dropped_events"].as_u64().unwrap() > 0);
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    let events = trace["traceEvents"].as_array().unwrap();
    for cat in ["phase", "kernel", "memory", "transfer", "fault"] {
        let n = events.iter().filter(|e| e["cat"] == *cat).count();
        assert!(n <= 2, "{cat} lane exceeded cap: {n}");
    }
    assert!(trace["summary"]["dropped_events"].as_u64().unwrap() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lt_model_flag() {
    let out = eim()
        .args([
            "--dataset",
            "EE",
            "--scale",
            "0.002",
            "--model",
            "lt",
            "--k",
            "2",
            "--eps",
            "0.5",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["model"], "LT");
}
