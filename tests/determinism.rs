//! Reproducibility guarantees: identical inputs produce bit-identical
//! outputs (seeds, set counts, memory, simulated time) across repeated
//! runs, thread schedules, and grid layouts.

use eim::graph::generators;
use eim::prelude::*;

fn graph() -> Graph {
    generators::rmat(
        500,
        3_000,
        generators::RmatParams::GRAPH500,
        WeightModel::WeightedCascade,
        77,
    )
}

#[test]
fn repeated_runs_are_bit_identical() {
    let g = graph();
    let run = || {
        EimBuilder::new(&g)
            .k(6)
            .epsilon(0.25)
            .seed(5)
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.num_sets, b.num_sets);
    assert_eq!(a.total_elements, b.total_elements);
    assert_eq!(a.memory.store_bytes, b.memory.store_bytes);
    assert_eq!(a.sim_time_us(), b.sim_time_us());
    assert_eq!(a.counters, b.counters);
}

#[test]
fn different_seeds_differ() {
    let g = graph();
    let a = EimBuilder::new(&g)
        .k(6)
        .epsilon(0.25)
        .seed(1)
        .run()
        .unwrap();
    let b = EimBuilder::new(&g)
        .k(6)
        .epsilon(0.25)
        .seed(2)
        .run()
        .unwrap();
    // Set multisets differ; usually the element total does too.
    assert_ne!(a.total_elements, b.total_elements);
}

#[test]
fn determinism_under_constrained_thread_pool() {
    // Run the same config inside a 2-thread rayon pool: outputs must equal
    // the default pool's (per-index RNG streams make scheduling invisible).
    let g = graph();
    let reference = EimBuilder::new(&g)
        .k(6)
        .epsilon(0.25)
        .seed(9)
        .run()
        .unwrap();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap();
    let constrained = pool.install(|| {
        EimBuilder::new(&g)
            .k(6)
            .epsilon(0.25)
            .seed(9)
            .run()
            .unwrap()
    });
    assert_eq!(reference.seeds, constrained.seeds);
    assert_eq!(reference.num_sets, constrained.num_sets);
    assert_eq!(reference.sim_time_us(), constrained.sim_time_us());
}

#[test]
fn mc_spread_estimates_are_deterministic() {
    let g = graph();
    let seeds = [1u32, 5, 9];
    let a = eim::diffusion::estimate_spread(&g, &seeds, DiffusionModel::LinearThreshold, 300, 4);
    let b = eim::diffusion::estimate_spread(&g, &seeds, DiffusionModel::LinearThreshold, 300, 4);
    assert_eq!(a, b);
}

#[test]
fn dataset_generation_is_stable() {
    // The registry recipes must keep producing the same graphs, or every
    // recorded experiment result would silently drift.
    let d = eim::graph::Dataset::by_abbrev("WV").unwrap();
    let g = d.generate(1.0 / 1024.0, WeightModel::WeightedCascade, 42);
    let h = d.generate(1.0 / 1024.0, WeightModel::WeightedCascade, 42);
    assert_eq!(g.csc().offsets(), h.csc().offsets());
    assert_eq!(g.csc().neighbors(), h.csc().neighbors());
}
