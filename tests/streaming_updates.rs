//! Streaming differential oracle: the incremental engine must be
//! *indistinguishable* from throwing everything away. At every checkpoint of
//! an edge-update stream, [`StreamingImmEngine`]'s seeds are byte-compared
//! against a cold full recompute on the mutated graph — across every engine
//! in the workspace, every store backend, both graph layouts, and 1/4-thread
//! rayon pools. The invalidation index is additionally pinned down directly:
//! its prediction must equal the set actually resampled, deletes of
//! never-traversed edges must invalidate nothing, and hub inserts must never
//! over-invalidate.

use eim::baselines::{CuRipplesEngine, GimEngine, HostSpec};
use eim::core::{DeviceResampler, EimEngine, MultiGpuEimEngine, ScanStrategy};
use eim::diffusion::sample_rng;
use eim::gpusim::{Device, DeviceSpec, FaultPlan, FaultSpec, RunTrace};
use eim::graph::{generators, GraphDelta, VertexId};
use eim::imm::{
    run_imm, CpuEngine, CpuParallelism, HostResampler, ImmConfig, RrrSets, StreamingImmEngine,
};
use eim::prelude::*;
use proptest::prelude::*;
use rand::Rng;
use std::sync::Arc;

const WEIGHT_SEED: u64 = 7;

fn test_graph(seed: u64) -> Graph {
    generators::rmat(
        300,
        1_800,
        generators::RmatParams::GRAPH500,
        WeightModel::WeightedCascade,
        seed,
    )
}

fn base_config(model: DiffusionModel) -> ImmConfig {
    ImmConfig::paper_default()
        .with_k(4)
        .with_epsilon(0.3)
        .with_seed(1234)
        .with_model(model)
        .with_packed(false)
        .with_source_elimination(false)
}

fn spec() -> DeviceSpec {
    DeviceSpec::rtx_a6000_with_mem(512 << 20)
}

fn scripted_stream(g: &Graph, seed: u64, batches: usize) -> Vec<GraphDelta> {
    generators::update_stream(
        g,
        &generators::UpdateStreamSpec {
            batches,
            edges_per_batch: 12,
            insert_fraction: 0.5,
            seed,
        },
    )
}

fn streaming_engine(g: &Graph, c: ImmConfig) -> StreamingImmEngine<HostResampler> {
    StreamingImmEngine::new(
        g.clone(),
        c,
        WeightModel::WeightedCascade,
        WEIGHT_SEED,
        HostResampler::new(c.model, c.seed),
    )
}

fn cold_cpu(g: &Graph, c: ImmConfig) -> Vec<VertexId> {
    let mut e = CpuEngine::new(g, c, CpuParallelism::Rayon);
    run_imm(&mut e, &c).unwrap().seeds
}

/// The tentpole bar: one streaming engine tracks a mutating graph while five
/// independent cold engines recompute from scratch at every checkpoint. All
/// six must agree byte for byte, under 1- and 4-thread rayon pools.
#[test]
fn incremental_matches_cold_recompute_across_engines() {
    let g0 = test_graph(7);
    let c = base_config(DiffusionModel::IndependentCascade);
    let deltas = scripted_stream(&g0, 11, 2);

    type Run<'a> = Box<dyn Fn(&Graph) -> Vec<VertexId> + Sync + 'a>;
    let engines: Vec<(&str, Run)> = vec![
        (
            "eim",
            Box::new(|g| {
                let mut e =
                    EimEngine::new(g, c, Device::new(spec()), ScanStrategy::ThreadPerSet).unwrap();
                run_imm(&mut e, &c).unwrap().seeds
            }),
        ),
        (
            "gim",
            Box::new(|g| {
                let mut e = GimEngine::new(g, c, Device::new(spec())).unwrap();
                run_imm(&mut e, &c).unwrap().seeds
            }),
        ),
        (
            "curipples",
            Box::new(|g| {
                let mut e =
                    CuRipplesEngine::new(g, c, Device::new(spec()), HostSpec::default()).unwrap();
                run_imm(&mut e, &c).unwrap().seeds
            }),
        ),
        (
            "multigpu",
            Box::new(|g| {
                let mut e =
                    MultiGpuEimEngine::with_telemetry(g, c, spec(), 3, &RunTrace::disabled(), true)
                        .unwrap();
                run_imm(&mut e, &c).unwrap().seeds
            }),
        ),
        ("cpu", Box::new(|g| cold_cpu(g, c))),
    ];

    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut s = streaming_engine(&g0, c);
            let initial = s.replay().unwrap();
            let mut cold_graph = g0.clone();
            for (name, run) in &engines {
                assert_eq!(
                    initial.seeds,
                    run(&cold_graph),
                    "{name} ({threads} threads): initial replay diverged"
                );
            }
            for (b, delta) in deltas.iter().enumerate() {
                let report = s.apply_update(delta).unwrap();
                cold_graph.apply_delta(delta, WeightModel::WeightedCascade, WEIGHT_SEED);
                for (name, run) in &engines {
                    assert_eq!(
                        report.result.seeds,
                        run(&cold_graph),
                        "{name} ({threads} threads): batch {b} diverged"
                    );
                }
                assert!(
                    report.resampled_slots.len() < s.slots(),
                    "batch {b}: incremental redrew everything"
                );
            }
        });
    }
}

/// Store backends (plain / packed / compressed) and source elimination are
/// pure layout/heuristic switches: every combination must track the cold
/// recompute, under IC and LT.
#[test]
fn incremental_matches_on_every_store_backend() {
    let g0 = test_graph(23);
    for model in [
        DiffusionModel::IndependentCascade,
        DiffusionModel::LinearThreshold,
    ] {
        let deltas = scripted_stream(&g0, 5, 2);
        for (packed, compressed) in [(false, false), (true, false), (false, true)] {
            for elim in [false, true] {
                let c = base_config(model)
                    .with_packed(packed)
                    .with_compressed(compressed)
                    .with_source_elimination(elim);
                let mut s = streaming_engine(&g0, c);
                let initial = s.replay().unwrap();
                let mut cold_graph = g0.clone();
                let label = format!("{model} packed={packed} compressed={compressed} elim={elim}");
                assert_eq!(initial.seeds, cold_cpu(&cold_graph, c), "{label}: initial");
                for (b, delta) in deltas.iter().enumerate() {
                    let report = s.apply_update(delta).unwrap();
                    cold_graph.apply_delta(delta, WeightModel::WeightedCascade, WEIGHT_SEED);
                    assert_eq!(
                        report.result.seeds,
                        cold_cpu(&cold_graph, c),
                        "{label}: batch {b}"
                    );
                }
            }
        }
    }
}

/// The device resampler (packed device rows refreshed in place via
/// `PackedCsc::with_updated_rows`) must match both the host resampler's
/// incremental run and a cold packed-graph device engine at every checkpoint.
#[test]
fn device_resampler_tracks_cold_packed_engine() {
    let g0 = test_graph(31);
    let c = base_config(DiffusionModel::IndependentCascade).with_packed(true);
    let deltas = scripted_stream(&g0, 17, 2);

    let mut dev = StreamingImmEngine::new(
        g0.clone(),
        c,
        WeightModel::WeightedCascade,
        WEIGHT_SEED,
        DeviceResampler::new(Device::new(spec()), &g0, c.model, c.seed),
    );
    let mut host = streaming_engine(&g0, c);
    assert_eq!(dev.replay().unwrap(), host.replay().unwrap());

    let mut cold_graph = g0.clone();
    for (b, delta) in deltas.iter().enumerate() {
        let rd = dev.apply_update(delta).unwrap();
        let rh = host.apply_update(delta).unwrap();
        assert_eq!(rd.result, rh.result, "batch {b}: device vs host result");
        assert_eq!(rd.resampled_slots, rh.resampled_slots, "batch {b}");
        cold_graph.apply_delta(delta, WeightModel::WeightedCascade, WEIGHT_SEED);
        let mut e = EimEngine::new(
            &cold_graph,
            c,
            Device::new(spec()),
            ScanStrategy::ThreadPerSet,
        )
        .unwrap();
        assert_eq!(
            rd.result.seeds,
            run_imm(&mut e, &c).unwrap().seeds,
            "batch {b}: device incremental vs cold packed engine"
        );
    }
}

/// Transient kernel faults during redraws are retried and commit nothing:
/// a fault-injected device stream must be bit-exact with the clean host run.
#[test]
fn fault_injected_replay_is_bit_exact() {
    let g0 = test_graph(43);
    let c = base_config(DiffusionModel::IndependentCascade);
    let deltas = scripted_stream(&g0, 29, 3);

    let device = Device::new(spec()).with_fault_plan(Arc::new(FaultPlan::new(
        FaultSpec::parse("seed=5,kernel=0.3").unwrap(),
    )));
    let mut faulty = StreamingImmEngine::new(
        g0.clone(),
        c,
        WeightModel::WeightedCascade,
        WEIGHT_SEED,
        DeviceResampler::new(device, &g0, c.model, c.seed).with_max_retries(64),
    );
    let mut clean = streaming_engine(&g0, c);
    assert_eq!(faulty.replay().unwrap(), clean.replay().unwrap());
    for (b, delta) in deltas.iter().enumerate() {
        let rf = faulty.apply_update(delta).unwrap();
        let rc = clean.apply_update(delta).unwrap();
        assert_eq!(rf.result, rc.result, "batch {b}: faults changed the run");
        assert_eq!(rf.resampled_slots, rc.resampled_slots, "batch {b}");
    }
    assert_eq!(faulty.store_digest(), clean.store_digest());
}

/// Deleting an edge whose head no traversal ever visited (and that was never
/// a source) must invalidate zero sets: the run is untouched and nothing is
/// decoded or redrawn.
#[test]
fn delete_of_untraversed_edge_invalidates_nothing() {
    // Sparse and large relative to the sample count, so plenty of vertices
    // appear in no footprint at all.
    let g0 = generators::rmat(
        4_000,
        6_000,
        generators::RmatParams::GRAPH500,
        WeightModel::WeightedCascade,
        3,
    );
    let c = ImmConfig::paper_default()
        .with_k(2)
        .with_epsilon(0.5)
        .with_seed(99)
        .with_packed(false)
        .with_source_elimination(false);
    let mut s = streaming_engine(&g0, c);
    let before = s.replay().unwrap();

    // Find a deletable edge (u, v) the index predicts clean: v's in-row
    // changes but no footprint contains v.
    let delta = (0..g0.num_vertices() as VertexId)
        .filter(|&v| !g0.in_neighbors(v).is_empty())
        .map(|v| GraphDelta {
            inserts: vec![],
            deletes: vec![(g0.in_neighbors(v)[0], v)],
        })
        .find(|d| s.predict_invalidated(d).is_empty())
        .expect("some in-edge head must sit outside every footprint");

    let report = s.apply_update(&delta).unwrap();
    assert_eq!(report.changed_heads, 1, "the delete is structural");
    assert!(report.resampled_slots.is_empty(), "no set may be redrawn");
    assert_eq!(report.decoded_sets, 0, "no stored set may be decoded");
    assert_eq!(report.result, before, "the run is untouched");
    // And it really is what a cold recompute sees.
    let mut cold = g0.clone();
    cold.apply_delta(&delta, WeightModel::WeightedCascade, WEIGHT_SEED);
    assert_eq!(report.result.seeds, cold_cpu(&cold, c));
}

/// Inserting an in-edge of a hub invalidates exactly the samples whose
/// footprint holds the hub — no set lacking it may be resampled, and every
/// set holding it must be.
#[test]
fn hub_insert_never_over_invalidates() {
    let g0 = test_graph(53);
    let c = base_config(DiffusionModel::IndependentCascade).with_source_elimination(true);
    let mut s = streaming_engine(&g0, c);
    s.replay().unwrap();
    let n = g0.num_vertices() as VertexId;

    let hub = (0..n).max_by_key(|&v| g0.in_neighbors(v).len()).unwrap();
    let tail = (0..n)
        .find(|&u| u != hub && !g0.in_neighbors(hub).contains(&u))
        .unwrap();

    // Old footprints, reconstructed before the update patches the store:
    // stored content plus the (recomputable) source.
    let holds_hub: Vec<bool> = (0..s.slots())
        .map(|i| {
            let source: VertexId = sample_rng(c.seed, i as u64).gen_range(0..n);
            source == hub || s.store().set_members(i).contains(&hub)
        })
        .collect();
    let expected: Vec<u32> = (0..s.slots() as u32)
        .filter(|&i| holds_hub[i as usize])
        .collect();
    assert!(
        !expected.is_empty(),
        "a hub should appear in some footprint"
    );

    let delta = GraphDelta {
        inserts: vec![(tail, hub)],
        deletes: vec![],
    };
    let report = s.apply_update(&delta).unwrap();
    assert_eq!(
        report.resampled_slots, expected,
        "resampled exactly the footprints holding the hub"
    );
    let mut cold = g0.clone();
    cold.apply_delta(&delta, WeightModel::WeightedCascade, WEIGHT_SEED);
    assert_eq!(report.result.seeds, cold_cpu(&cold, c));
}

/// A structurally empty batch (no updates, redundant deletes, self-healing
/// delete+insert pairs) is a complete no-op: zero resamples, zero decodes,
/// and the cached result is returned untouched.
#[test]
fn empty_and_self_healing_deltas_are_noops() {
    let g0 = test_graph(61);
    let c = base_config(DiffusionModel::IndependentCascade);
    let mut s = streaming_engine(&g0, c);
    let before = s.replay().unwrap();

    let (u, v) = {
        let v = (0..g0.num_vertices() as VertexId)
            .find(|&v| !g0.in_neighbors(v).is_empty())
            .unwrap();
        (g0.in_neighbors(v)[0], v)
    };
    let absent = (0..g0.num_vertices() as VertexId)
        .find(|&w| w != v && !g0.in_neighbors(v).contains(&w))
        .unwrap();
    let cases = [
        GraphDelta::default(),
        // Deleting a non-existent edge is redundant.
        GraphDelta {
            inserts: vec![],
            deletes: vec![(absent, v)],
        },
        // Delete + reinsert of a live edge self-heals within the batch.
        GraphDelta {
            inserts: vec![(u, v)],
            deletes: vec![(u, v)],
        },
        // Duplicate records collapse.
        GraphDelta {
            inserts: vec![(u, v), (u, v)],
            deletes: vec![],
        },
    ];
    for (i, delta) in cases.iter().enumerate() {
        assert!(s.predict_invalidated(delta).is_empty(), "case {i}");
        let report = s.apply_update(delta).unwrap();
        assert_eq!(report.changed_heads, 0, "case {i}");
        assert!(report.resampled_slots.is_empty(), "case {i}");
        assert_eq!(report.decoded_sets, 0, "case {i}: no decode charged");
        assert_eq!(report.fresh_slots, 0, "case {i}");
        assert_eq!(report.result, before, "case {i}: cached result reused");
    }
}

/// Regression for the delete+reinsert weight bug: a batch that deletes and
/// re-inserts a live edge alongside a real structural change must keep the
/// surviving weight under every weight model, agree with the membership-only
/// invalidation prediction, and track the cold recompute. Only
/// WeightedCascade (the model every other test hardcodes) rewrote whole rows
/// and thus masked the zeroed placeholder weight.
#[test]
fn reinsert_batches_match_recompute_under_every_weight_model() {
    let g0 = test_graph(83);
    let c = base_config(DiffusionModel::IndependentCascade);
    let (u, v, w0) = g0.iter_edges().next().unwrap();
    let n = g0.num_vertices() as VertexId;
    let absent = (0..n)
        .flat_map(|a| (0..n).map(move |b| (a, b)))
        .find(|&(a, b)| a != b && !g0.has_edge(a, b))
        .unwrap();
    let deltas = [
        // Delete+reinsert (u, v) while inserting a genuinely new edge.
        GraphDelta {
            inserts: vec![(u, v), absent],
            deletes: vec![(u, v)],
        },
        // Same self-heal while deleting the edge the first batch added.
        GraphDelta {
            inserts: vec![(u, v)],
            deletes: vec![(u, v), absent],
        },
    ];
    for wm in [
        WeightModel::WeightedCascade,
        WeightModel::Uniform(0.1),
        WeightModel::Trivalency,
        WeightModel::Random,
        WeightModel::Preserve,
    ] {
        let mut s = StreamingImmEngine::new(
            g0.clone(),
            c,
            wm,
            WEIGHT_SEED,
            HostResampler::new(c.model, c.seed),
        );
        s.replay().unwrap();
        let mut cold_graph = g0.clone();
        for (b, delta) in deltas.iter().enumerate() {
            let predicted = s.predict_invalidated(delta);
            let report = s.apply_update(delta).unwrap();
            assert_eq!(report.resampled_slots, predicted, "{wm:?} batch {b}");
            cold_graph.apply_delta(delta, wm, WEIGHT_SEED);
            assert_eq!(
                report.result.seeds,
                cold_cpu(&cold_graph, c),
                "{wm:?} batch {b}"
            );
            let idx = s.graph().in_neighbors(v).binary_search(&u).unwrap();
            let w = s.graph().in_weights(v)[idx];
            assert!(w > 0.0, "{wm:?} batch {b}: reinserted edge silently died");
            if !matches!(wm, WeightModel::WeightedCascade) {
                assert_eq!(w, w0, "{wm:?} batch {b}: surviving weight must be kept");
            }
        }
    }
}

/// Strategy: a random update stream over `n` vertices — random batch count
/// and sizes, arbitrary insert/delete mixes, duplicate records, and (by
/// construction of small vertex ranges) frequent self-healing pairs.
fn random_stream(n: VertexId) -> impl Strategy<Value = Vec<GraphDelta>> {
    let edge = move || (0..n, 0..n - 1).prop_map(move |(u, d)| (u, (u + 1 + d) % n));
    let batch = (
        proptest::collection::vec(edge(), 0..12),
        proptest::collection::vec(edge(), 0..12),
    )
        .prop_map(|(inserts, deletes)| GraphDelta { inserts, deletes });
    proptest::collection::vec(batch, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random streams: the incremental seeds equal a cold recompute at every
    /// checkpoint, and the invalidation index's prediction equals the set of
    /// slots actually redrawn.
    #[test]
    fn random_streams_match_recompute_and_prediction(
        deltas in random_stream(300),
        elim in any::<bool>(),
    ) {
        let g0 = test_graph(71);
        let c = base_config(DiffusionModel::IndependentCascade)
            .with_source_elimination(elim);
        let mut s = streaming_engine(&g0, c);
        s.replay().unwrap();
        let mut cold_graph = g0.clone();
        for delta in &deltas {
            let predicted = s.predict_invalidated(delta);
            let report = s.apply_update(delta).unwrap();
            prop_assert_eq!(&report.resampled_slots, &predicted);
            cold_graph.apply_delta(delta, WeightModel::WeightedCascade, WEIGHT_SEED);
            prop_assert_eq!(&report.result.seeds, &cold_cpu(&cold_graph, c));
        }
    }
}
