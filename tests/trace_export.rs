//! Golden test for the run-telemetry subsystem: drive a tiny deterministic
//! graph through `eim --trace`, parse the emitted Chrome trace-event JSON,
//! and assert the structural invariants every Perfetto-loadable trace of a
//! run must satisfy — for all three simulated GPU engines.

use std::process::Command;

/// Runs `eim --trace --json` and returns the parsed trace file plus the
/// parsed stdout telemetry.
fn run_traced_with(engine: &str, extra: &[&str]) -> (serde_json::Value, serde_json::Value) {
    let dir = std::env::temp_dir().join("eim_trace_export_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{engine}{}.trace.json", extra.join("_")));
    let out = Command::new(env!("CARGO_BIN_EXE_eim"))
        .args([
            "--dataset",
            "WV",
            "--scale",
            "0.01",
            "--k",
            "3",
            "--eps",
            "0.4",
            "--seed",
            "11",
            "--engine",
            engine,
            "--trace",
            path.to_str().unwrap(),
            "--json",
        ])
        .args(extra)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{engine}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let trace = serde_json::from_str(&text).expect("trace parses as JSON");
    let stdout = serde_json::from_slice(&out.stdout).expect("stdout parses as JSON");
    (trace, stdout)
}

fn run_traced(engine: &str) -> serde_json::Value {
    run_traced_with(engine, &[]).0
}

fn events_of<'v>(v: &'v serde_json::Value, cat: &str) -> Vec<&'v serde_json::Value> {
    v["traceEvents"]
        .as_array()
        .expect("traceEvents array")
        .iter()
        .filter(|e| e["cat"] == cat)
        .collect()
}

#[test]
fn every_gpu_engine_emits_a_complete_trace() {
    for engine in ["eim", "gim", "curipples"] {
        let v = run_traced(engine);

        // Phase spans: the three IMM driver phases, in timeline order,
        // back to back.
        let phases = events_of(&v, "phase");
        let names: Vec<&str> = phases.iter().map(|e| e["name"].as_str().unwrap()).collect();
        assert_eq!(
            names,
            ["estimation", "sampling", "selection"],
            "{engine}: phase spans"
        );
        for pair in phases.windows(2) {
            let end = pair[0]["ts"].as_f64().unwrap() + pair[0]["dur"].as_f64().unwrap();
            let next = pair[1]["ts"].as_f64().unwrap();
            assert!(
                (end - next).abs() < 1e-6,
                "{engine}: phases tile the timeline"
            );
        }

        // Kernel events: at least one launch, with simulated cycles and a
        // grid size, all `ph: X` duration events.
        let kernels = events_of(&v, "kernel");
        assert!(!kernels.is_empty(), "{engine}: no kernel events");
        for k in &kernels {
            assert_eq!(k["ph"], "X", "{engine}: kernel events are spans");
            assert!(k["dur"].as_f64().unwrap() > 0.0);
            assert!(k["args"]["blocks"].as_u64().unwrap() > 0);
        }
        let total_cycles: u64 = kernels
            .iter()
            .map(|k| k["args"]["total_cycles"].as_u64().unwrap())
            .sum();
        assert!(total_cycles > 0, "{engine}: kernels charged no cycles");

        // Memory events: allocations with a nonzero high-water mark in the
        // embedded summary.
        assert!(
            !events_of(&v, "memory").is_empty(),
            "{engine}: no memory events"
        );
        let summary = &v["summary"];
        assert!(
            summary["peak_device_bytes"].as_u64().unwrap() > 0,
            "{engine}: zero memory high-water mark"
        );
        assert!(summary["kernel_launches"].as_u64().unwrap() >= kernels.len() as u64);

        // Transfer events: every engine uploads its graph; cuRipples also
        // offloads RRR batches.
        let transfers = events_of(&v, "transfer");
        assert!(!transfers.is_empty(), "{engine}: no transfer events");
        assert!(transfers
            .iter()
            .all(|t| t["args"]["bytes"].as_u64().is_some()));
        if engine == "curipples" {
            assert!(
                transfers.len() > 1,
                "curipples must offload RRR batches beyond the graph upload"
            );
        }

        // Trace metadata names the engine.
        assert_eq!(v["otherData"]["engine"].as_str().unwrap(), engine);
    }
}

#[test]
fn multigpu_trace_has_one_process_group_per_device() {
    let (v, stdout) = run_traced_with("multigpu", &["--devices", "4"]);
    let events = v["traceEvents"].as_array().expect("traceEvents array");

    // One Perfetto process group per device, named by the exporter.
    let mut proc_pids: Vec<u64> = events
        .iter()
        .filter(|e| e["ph"] == "M" && e["name"] == "process_name")
        .map(|e| e["pid"].as_u64().unwrap())
        .collect();
    proc_pids.sort_unstable();
    assert_eq!(proc_pids, [0, 1, 2, 3], "one pid per device");
    for e in events
        .iter()
        .filter(|e| e["ph"] == "M" && e["name"] == "process_name")
    {
        let pid = e["pid"].as_u64().unwrap();
        assert_eq!(e["args"]["name"], format!("device {pid}"));
    }

    // Every device runs sampling kernels inside its own process group.
    for pid in 0..4u64 {
        assert!(
            events
                .iter()
                .any(|e| e["cat"] == "kernel" && e["pid"].as_u64() == Some(pid)),
            "device {pid} recorded no kernel events"
        );
    }

    // Staging copies: every non-primary device streams its partition to
    // device 0, visible as transfer events on its own copy-stream lane.
    for pid in 1..4u64 {
        assert!(
            events.iter().any(|e| e["cat"] == "transfer"
                && e["name"] == "stream:d2h"
                && e["pid"].as_u64() == Some(pid)),
            "device {pid} recorded no staging copies"
        );
    }

    // The reported elapsed time is the max over the per-device clocks —
    // which is exactly where the last span on the timeline ends.
    let sim_us = stdout["simulated_device_ms"].as_f64().unwrap() * 1000.0;
    let max_end = events
        .iter()
        .filter(|e| e["ph"] == "X")
        .map(|e| e["ts"].as_f64().unwrap() + e["dur"].as_f64().unwrap())
        .fold(0.0, f64::max);
    assert!(
        (sim_us - max_end).abs() < 1e-6,
        "reported {sim_us} us vs last span end {max_end} us"
    );
}

#[test]
fn cpu_engine_trace_contains_kernel_events() {
    // The rayon sampling sweep and the greedy selection must land on the
    // kernel lane — not just the three driver phase spans.
    let v = run_traced("cpu");
    let kernels = events_of(&v, "kernel");
    assert!(
        !kernels.is_empty(),
        "cpu: rayon work missing from the kernel lane"
    );
    let names: Vec<&str> = kernels
        .iter()
        .map(|e| e["name"].as_str().unwrap())
        .collect();
    assert!(names.contains(&"cpu_sample"), "kernels: {names:?}");
    assert!(names.contains(&"cpu_select"), "kernels: {names:?}");
    let phases = events_of(&v, "phase");
    let phase_names: Vec<&str> = phases.iter().map(|e| e["name"].as_str().unwrap()).collect();
    assert_eq!(phase_names, ["estimation", "sampling", "selection"]);
}

#[test]
fn trace_is_deterministic_for_a_fixed_seed() {
    let a = run_traced("eim");
    let b = run_traced("eim");
    assert_eq!(a["traceEvents"], b["traceEvents"]);
    assert_eq!(a["summary"], b["summary"]);
}
