//! Property-based invariants across crates: cascade validity, RRR
//! reachability, store/count consistency, greedy-coverage guarantees, and
//! makespan bounds — on randomized graphs and stores.

use eim::diffusion::{sample_rng, sample_rrr_ic, simulate_ic, simulate_lt};
use eim::gpusim::slot_makespan_cycles;
use eim::graph::{Graph, GraphBuilder, VertexId, WeightModel};
use eim::imm::{select_seeds, PlainRrrStore, RrrSets, RrrStoreBuilder};
use proptest::prelude::*;

/// Strategy: a random directed graph with up to 40 vertices and 160 edges.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..40,
        prop::collection::vec((0u32..40, 0u32..40), 0..160),
        any::<u64>(),
    )
        .prop_map(|(n, raw_edges, seed)| {
            let edges: Vec<(VertexId, VertexId)> = raw_edges
                .into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32))
                .collect();
            GraphBuilder::new(n)
                .edges(edges)
                .weight_seed(seed)
                .build(WeightModel::WeightedCascade)
        })
}

/// True if `target` is forward-reachable from `from` in `g`.
fn reachable(g: &Graph, from: VertexId, target: VertexId) -> bool {
    let mut seen = vec![false; g.num_vertices()];
    let mut stack = vec![from];
    seen[from as usize] = true;
    while let Some(u) = stack.pop() {
        if u == target {
            return true;
        }
        for &v in g.out_neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                stack.push(v);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ic_cascades_are_valid(g in arb_graph(), seed in any::<u64>()) {
        let n = g.num_vertices() as u32;
        let seeds = [0u32 % n];
        let mut rng = sample_rng(seed, 0);
        let active = simulate_ic(&g, &seeds, &mut rng);
        // Contains the seed; sorted unique; every non-seed member has an
        // in-neighbor in the active set (someone activated it).
        prop_assert!(active.contains(&seeds[0]));
        prop_assert!(active.windows(2).all(|w| w[0] < w[1]));
        for &v in &active {
            if v == seeds[0] { continue; }
            let has_active_parent = g
                .in_neighbors(v)
                .iter()
                .any(|u| active.binary_search(u).is_ok());
            prop_assert!(has_active_parent, "vertex {v} activated with no active parent");
        }
    }

    #[test]
    fn lt_cascades_are_valid(g in arb_graph(), seed in any::<u64>()) {
        let seeds = [1u32 % g.num_vertices() as u32];
        let mut rng = sample_rng(seed, 1);
        let active = simulate_lt(&g, &seeds, &mut rng);
        prop_assert!(active.contains(&seeds[0]));
        for &v in &active {
            if v == seeds[0] { continue; }
            let has_active_parent = g
                .in_neighbors(v)
                .iter()
                .any(|u| active.binary_search(u).is_ok());
            prop_assert!(has_active_parent);
        }
    }

    #[test]
    fn rrr_members_reach_the_source(g in arb_graph(), seed in any::<u64>()) {
        let source = (seed % g.num_vertices() as u64) as u32;
        let mut rng = sample_rng(seed, 2);
        let set = sample_rrr_ic(&g, source, &mut rng);
        prop_assert!(set.binary_search(&source).is_ok());
        // An RRR member was activated in reverse, so in the forward graph
        // it must be able to reach the source.
        for &v in &set {
            prop_assert!(reachable(&g, v, source), "member {v} cannot reach source {source}");
        }
    }

    #[test]
    fn store_counts_match_membership(
        raw_sets in prop::collection::vec(prop::collection::btree_set(0u32..30, 0..8), 0..60)
    ) {
        let n = 30;
        let mut store = PlainRrrStore::new(n);
        for s in &raw_sets {
            let v: Vec<u32> = s.iter().copied().collect();
            store.append_set(&v);
        }
        for v in 0..n as u32 {
            let expected = raw_sets.iter().filter(|s| s.contains(&v)).count() as u32;
            prop_assert_eq!(store.counts()[v as usize], expected);
            for (i, s) in raw_sets.iter().enumerate() {
                prop_assert_eq!(store.contains(i, v), s.contains(&v));
            }
        }
        prop_assert_eq!(store.total_elements(), raw_sets.iter().map(|s| s.len()).sum::<usize>());
    }

    #[test]
    fn greedy_first_seed_is_max_count(
        raw_sets in prop::collection::vec(prop::collection::btree_set(0u32..20, 1..6), 1..50)
    ) {
        let n = 20;
        let mut store = PlainRrrStore::new(n);
        for s in &raw_sets {
            let v: Vec<u32> = s.iter().copied().collect();
            store.append_set(&v);
        }
        let sel = select_seeds(&store, 1);
        let max_count = *store.counts().iter().max().unwrap();
        prop_assert_eq!(store.counts()[sel.seeds[0] as usize], max_count);
        prop_assert_eq!(sel.covered_sets as u32, max_count);
    }

    #[test]
    fn greedy_coverage_is_monotone_and_bounded(
        raw_sets in prop::collection::vec(prop::collection::btree_set(0u32..25, 0..6), 0..60),
        k in 1usize..10,
    ) {
        let n = 25;
        let mut store = PlainRrrStore::new(n);
        for s in &raw_sets {
            let v: Vec<u32> = s.iter().copied().collect();
            store.append_set(&v);
        }
        let smaller = select_seeds(&store, k);
        let larger = select_seeds(&store, (k + 3).min(n));
        prop_assert!(larger.covered_sets >= smaller.covered_sets);
        let nonempty = raw_sets.iter().filter(|s| !s.is_empty()).count();
        prop_assert!(larger.covered_sets <= nonempty);
    }

    #[test]
    fn makespan_bounds(costs in prop::collection::vec(0u64..1000, 0..200), slots in 1usize..64) {
        let total: u64 = costs.iter().sum();
        let max = costs.iter().copied().max().unwrap_or(0);
        let makespan = slot_makespan_cycles(costs.iter().copied(), slots);
        prop_assert!(makespan >= max);
        prop_assert!(makespan >= total / slots as u64);
        prop_assert!(makespan <= total);
        // One slot serializes everything.
        prop_assert_eq!(slot_makespan_cycles(costs.iter().copied(), 1), total);
    }
}
