//! End-to-end pipeline tests through the public facade: graph families x
//! diffusion models x eIM options.

use eim::graph::generators;
use eim::prelude::*;

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        (
            "barabasi-albert",
            generators::barabasi_albert(600, 3, WeightModel::WeightedCascade, seed),
        ),
        (
            "erdos-renyi",
            generators::erdos_renyi_gnm(600, 3_000, WeightModel::WeightedCascade, seed),
        ),
        (
            "rmat",
            generators::rmat(
                600,
                3_600,
                generators::RmatParams::GRAPH500,
                WeightModel::WeightedCascade,
                seed,
            ),
        ),
        (
            "watts-strogatz",
            generators::watts_strogatz(600, 3, 0.2, WeightModel::WeightedCascade, seed),
        ),
    ]
}

#[test]
fn every_family_both_models() {
    for (name, graph) in families(3) {
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let r = EimBuilder::new(&graph)
                .k(5)
                .epsilon(0.3)
                .model(model)
                .seed(11)
                .run()
                .unwrap_or_else(|e| panic!("{name}/{model}: {e}"));
            assert_eq!(r.seeds.len(), 5, "{name}/{model}");
            let mut unique = r.seeds.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), 5, "{name}/{model}: duplicate seeds");
            assert!(r.coverage > 0.0 && r.coverage <= 1.0);
            assert!(r.sim_time_us() > 0.0);
        }
    }
}

#[test]
fn seeds_have_above_average_influence() {
    let graph = generators::barabasi_albert(1_500, 3, WeightModel::WeightedCascade, 5);
    let r = EimBuilder::new(&graph)
        .k(10)
        .epsilon(0.2)
        .seed(2)
        .run()
        .unwrap();
    let chosen = eim::diffusion::estimate_spread(
        &graph,
        &r.seeds,
        DiffusionModel::IndependentCascade,
        500,
        7,
    );
    // Average spread of 10 arbitrary vertices for comparison.
    let arbitrary: Vec<u32> = (0..10).map(|i| i * 141).collect();
    let baseline = eim::diffusion::estimate_spread(
        &graph,
        &arbitrary,
        DiffusionModel::IndependentCascade,
        500,
        7,
    );
    assert!(
        chosen > 1.5 * baseline,
        "chosen {chosen} vs arbitrary {baseline}"
    );
}

#[test]
fn coverage_and_theta_scale_with_epsilon() {
    let graph = generators::rmat(
        500,
        3_000,
        generators::RmatParams::MILD,
        WeightModel::WeightedCascade,
        8,
    );
    let loose = EimBuilder::new(&graph)
        .k(5)
        .epsilon(0.5)
        .seed(4)
        .run()
        .unwrap();
    let tight = EimBuilder::new(&graph)
        .k(5)
        .epsilon(0.15)
        .seed(4)
        .run()
        .unwrap();
    assert!(
        tight.num_sets > 3 * loose.num_sets,
        "tight {} loose {}",
        tight.num_sets,
        loose.num_sets
    );
}

#[test]
fn tiny_graphs_work() {
    let graph = generators::path(2, WeightModel::WeightedCascade);
    let r = EimBuilder::new(&graph).k(1).epsilon(0.5).run().unwrap();
    assert_eq!(r.seeds.len(), 1);
    // On 0 -> 1, vertex 0 is the only seed that covers both RRR roots.
    assert_eq!(r.seeds[0], 0);
}

#[test]
fn k_equals_n_selects_everything() {
    let graph = generators::cycle(6, WeightModel::WeightedCascade);
    let r = EimBuilder::new(&graph).k(6).epsilon(0.5).run().unwrap();
    let mut seeds = r.seeds.clone();
    seeds.sort_unstable();
    assert_eq!(seeds, vec![0, 1, 2, 3, 4, 5]);
    assert_eq!(r.coverage, 1.0);
}

#[test]
fn random_edge_weight_ic_is_supported() {
    // The paper's conclusion plans "support for the IC model with random
    // edge weights"; the pipeline here is weight-model agnostic.
    for model in [WeightModel::Random, WeightModel::Trivalency] {
        let graph = generators::rmat(400, 2_400, generators::RmatParams::MILD, model, 17);
        let r = EimBuilder::new(&graph)
            .k(4)
            .epsilon(0.3)
            .seed(23)
            .run()
            .unwrap_or_else(|e| panic!("{model:?}: {e}"));
        assert_eq!(r.seeds.len(), 4, "{model:?}");
        let spread = eim::diffusion::estimate_spread(
            &graph,
            &r.seeds,
            DiffusionModel::IndependentCascade,
            300,
            5,
        );
        assert!(spread >= 4.0, "{model:?}: spread {spread}");
    }
}

#[test]
fn multi_gpu_engine_through_facade() {
    use eim::core::MultiGpuEimEngine;
    use eim::imm::{run_imm, ImmConfig};
    let graph = generators::barabasi_albert(500, 3, WeightModel::WeightedCascade, 3);
    let c = ImmConfig::paper_default()
        .with_k(3)
        .with_epsilon(0.3)
        .with_seed(9);
    let mut engine =
        MultiGpuEimEngine::new(&graph, c, eim::gpusim::DeviceSpec::rtx_a6000(), 2).unwrap();
    let r = run_imm(&mut engine, &c).unwrap();
    assert_eq!(r.seeds.len(), 3);
}

#[test]
fn facade_reexports_are_usable() {
    // The prelude and module re-exports compile and interoperate.
    let g: eim::graph::Graph = eim::graph::GraphBuilder::new(3)
        .edges([(0, 1), (1, 2)])
        .build(eim::graph::WeightModel::WeightedCascade);
    let packed = eim::bitpack::PackedCsc::from_graph(&g);
    assert_eq!(packed.num_edges(), 2);
    let spec = eim::gpusim::DeviceSpec::rtx_a6000();
    assert_eq!(spec.num_sms, 84);
}
