//! Differential and determinism tests for the simulated hardware
//! performance counters.
//!
//! The metrics registry aggregates per-launch counters independently of the
//! trace recorder, so two invariants are checkable end to end:
//!
//! * **Reconciliation** — for every simulated GPU engine, the per-kernel
//!   cycle totals in the metrics block must equal the sums of the trace's
//!   kernel-span `total_cycles`, kernel by kernel (they come from the same
//!   single `record_kernel_hw` call sites).
//! * **Determinism** — metric dumps are byte-identical across runs, across
//!   rayon thread counts, and with the trace recorder on or off.

use std::collections::BTreeMap;
use std::process::Command;

use eim::core::{EimEngine, ScanStrategy};
use eim::gpusim::{Device, DeviceSpec, MetricsRegistry, RunTrace};
use eim::imm::{run_imm_recovering, RecoveryPolicy};
use eim::prelude::*;
use proptest::prelude::*;

/// Runs the CLI with `--json --trace` (and extras), returning the parsed
/// trace file and the parsed stdout.
fn run_cli(engine: &str, extra: &[&str]) -> (serde_json::Value, serde_json::Value) {
    let dir = std::env::temp_dir().join("eim_metrics_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{engine}{}.trace.json", extra.join("_")));
    let out = Command::new(env!("CARGO_BIN_EXE_eim"))
        .args([
            "--dataset",
            "WV",
            "--scale",
            "0.01",
            "--k",
            "3",
            "--eps",
            "0.4",
            "--seed",
            "11",
            "--engine",
            engine,
            "--trace",
            path.to_str().unwrap(),
            "--json",
        ])
        .args(extra)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{engine}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let stdout = serde_json::from_slice(&out.stdout).expect("stdout parses as JSON");
    (trace, stdout)
}

#[test]
fn metrics_cycle_totals_reconcile_with_trace_spans() {
    for (engine, extra) in [
        ("eim", &[][..]),
        ("gim", &[]),
        ("curipples", &[]),
        ("multigpu", &["--devices", "2"]),
    ] {
        let (trace, stdout) = run_cli(engine, extra);

        // Trace side: sum kernel-span cycles per (device pid, kernel name).
        let mut span_cycles: BTreeMap<(u64, String), u64> = BTreeMap::new();
        for e in trace["traceEvents"].as_array().unwrap() {
            if e["cat"] == "kernel" {
                *span_cycles
                    .entry((
                        e["pid"].as_u64().unwrap(),
                        e["name"].as_str().unwrap().to_string(),
                    ))
                    .or_default() += e["args"]["total_cycles"].as_u64().unwrap();
            }
        }
        assert!(!span_cycles.is_empty(), "{engine}: no kernel spans");

        // Metrics side: the per-kernel profiles of the --json block.
        let mut metric_cycles: BTreeMap<(u64, String), u64> = BTreeMap::new();
        for k in stdout["metrics"]["kernels"].as_array().unwrap() {
            metric_cycles.insert(
                (
                    k["device"].as_u64().unwrap(),
                    k["kernel"].as_str().unwrap().to_string(),
                ),
                k["cycles"].as_u64().unwrap(),
            );
        }
        assert_eq!(
            span_cycles, metric_cycles,
            "{engine}: metrics and trace spans disagree on per-kernel cycles"
        );
    }
}

#[test]
fn occupancy_and_divergence_are_non_trivial() {
    let (_, stdout) = run_cli("eim", &[]);
    let kernels = stdout["metrics"]["kernels"].as_array().unwrap();
    // At least one kernel must report an occupancy strictly between 0 and
    // 100% and a divergence strictly between 0 and 100% — all-zero or
    // all-saturated counters would mean the model is wired to constants.
    assert!(
        kernels.iter().any(|k| {
            let occ = k["occupancy_pct"].as_f64().unwrap();
            occ > 0.0 && occ < 100.0
        }),
        "no kernel with non-trivial occupancy"
    );
    assert!(
        kernels.iter().any(|k| {
            let div = k["divergence_pct"].as_f64().unwrap();
            div > 0.0 && div < 100.0
        }),
        "no kernel with non-trivial divergence"
    );
    assert!(
        kernels
            .iter()
            .any(|k| k["global_bytes"].as_u64().unwrap() > 0),
        "no kernel moved global memory"
    );
}

#[test]
fn prometheus_dump_is_byte_identical_across_runs() {
    let dir = std::env::temp_dir().join("eim_metrics_tests");
    std::fs::create_dir_all(&dir).unwrap();
    for engine in ["eim", "multigpu"] {
        let dump = |run: usize| {
            let path = dir.join(format!("{engine}_{run}.prom"));
            let out = Command::new(env!("CARGO_BIN_EXE_eim"))
                .args([
                    "--dataset",
                    "WV",
                    "--scale",
                    "0.01",
                    "--k",
                    "3",
                    "--eps",
                    "0.4",
                    "--seed",
                    "11",
                    "--engine",
                    engine,
                    "--metrics",
                ])
                .arg(&path)
                .output()
                .expect("binary runs");
            assert!(
                out.status.success(),
                "{engine}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            std::fs::read(&path).expect("metrics file written")
        };
        let a = dump(0);
        assert!(!a.is_empty(), "{engine}: empty metrics dump");
        assert_eq!(a, dump(1), "{engine}: metrics dump not byte-identical");
    }
}

#[test]
fn prometheus_dump_has_no_nans_and_monotone_buckets() {
    let dir = std::env::temp_dir().join("eim_metrics_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wellformed.prom");
    let out = Command::new(env!("CARGO_BIN_EXE_eim"))
        .args([
            "--dataset",
            "WV",
            "--scale",
            "0.01",
            "--k",
            "3",
            "--seed",
            "11",
            "--metrics",
        ])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).unwrap();
    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("name value");
        assert!(
            value.parse::<f64>().map(|v| v.is_finite()).unwrap_or(false),
            "non-finite sample: {line}"
        );
        if let Some(prefix) = series.find("le=").map(|i| series[..i].to_string()) {
            let v: u64 = value.parse().expect("bucket counts are integers");
            if let Some((ref p, prev)) = last_bucket {
                if *p == prefix {
                    assert!(prev <= v, "non-monotone buckets: {line}");
                }
            }
            last_bucket = Some((prefix, v));
        } else {
            last_bucket = None;
        }
    }
}

/// Runs the eIM engine on a generated graph inside a rayon pool of
/// `threads`, with a disabled trace and an attached metrics sink, and
/// returns the Prometheus dump.
fn run_engine_metrics(seed: u64, threads: usize) -> String {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let graph =
            eim::graph::generators::barabasi_albert(400, 3, WeightModel::WeightedCascade, seed);
        let config = ImmConfig::paper_default()
            .with_k(4)
            .with_epsilon(0.4)
            .with_seed(seed);
        let registry = MetricsRegistry::new();
        let trace = RunTrace::disabled().with_metrics(registry.sink().with_engine("eim"));
        let device = Device::with_run_trace(DeviceSpec::test_small(), trace.clone());
        let mut engine =
            EimEngine::new(&graph, config, device, ScanStrategy::ThreadPerSet).expect("fits");
        run_imm_recovering(&mut engine, &config, &RecoveryPolicy::abort(), &trace).expect("runs");
        registry.render_prometheus()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The metric dump is a pure function of the seed: invariant under the
    /// rayon thread count (chunk merging is associative, counter updates
    /// commutative) and under replay.
    #[test]
    fn metrics_invariant_under_thread_count_and_replay(seed in 0u64..1024) {
        let single = run_engine_metrics(seed, 1);
        prop_assert!(!single.is_empty());
        let parallel = run_engine_metrics(seed, 4);
        prop_assert_eq!(&single, &parallel, "thread count changed the dump");
        let replay = run_engine_metrics(seed, 4);
        prop_assert_eq!(&parallel, &replay, "replay changed the dump");
    }
}
