//! Cross-engine equivalence: with the heuristics disabled, eIM, gIM,
//! cuRipples, and the CPU reference all sample the same RRR multiset (same
//! per-index RNG streams) and run the same greedy — so they must return the
//! *identical* seed set. That invariant is what makes the timing
//! comparisons of Figures 7-8 and Tables 2-5 apples-to-apples.

use eim::baselines::{CuRipplesEngine, GimEngine, HostSpec};
use eim::core::{EimEngine, MultiGpuEimEngine, ScanStrategy};
use eim::gpusim::{Device, DeviceSpec, RunTrace};
use eim::graph::generators;
use eim::imm::{run_imm, CpuEngine, CpuParallelism, ImmConfig, ImmEngine as _, RrrSets};
use eim::prelude::*;

fn test_graph(seed: u64) -> Graph {
    generators::rmat(
        400,
        2_400,
        generators::RmatParams::GRAPH500,
        WeightModel::WeightedCascade,
        seed,
    )
}

fn plain_config(model: DiffusionModel) -> ImmConfig {
    ImmConfig::paper_default()
        .with_k(4)
        .with_epsilon(0.3)
        .with_seed(1234)
        .with_model(model)
        .with_packed(false)
        .with_source_elimination(false)
}

fn spec() -> DeviceSpec {
    DeviceSpec::rtx_a6000_with_mem(512 << 20)
}

#[test]
fn identical_seeds_across_all_engines_ic() {
    let g = test_graph(7);
    let c = plain_config(DiffusionModel::IndependentCascade);

    let mut eim = EimEngine::new(&g, c, Device::new(spec()), ScanStrategy::ThreadPerSet).unwrap();
    let r_eim = run_imm(&mut eim, &c).unwrap();

    let mut gim = GimEngine::new(&g, c, Device::new(spec())).unwrap();
    let r_gim = run_imm(&mut gim, &c).unwrap();

    let mut cur = CuRipplesEngine::new(&g, c, Device::new(spec()), HostSpec::default()).unwrap();
    let r_cur = run_imm(&mut cur, &c).unwrap();

    assert_eq!(r_eim.seeds, r_gim.seeds);
    assert_eq!(r_eim.seeds, r_cur.seeds);
    assert_eq!(r_eim.num_sets, r_gim.num_sets);
    assert_eq!(r_eim.total_elements, r_gim.total_elements);
}

#[test]
fn identical_seeds_across_all_engines_lt() {
    let g = test_graph(19);
    let c = plain_config(DiffusionModel::LinearThreshold);

    let mut eim = EimEngine::new(&g, c, Device::new(spec()), ScanStrategy::ThreadPerSet).unwrap();
    let r_eim = run_imm(&mut eim, &c).unwrap();

    let mut gim = GimEngine::new(&g, c, Device::new(spec())).unwrap();
    let r_gim = run_imm(&mut gim, &c).unwrap();

    assert_eq!(r_eim.seeds, r_gim.seeds, "LT walks must match");
    assert_eq!(r_eim.num_sets, r_gim.num_sets);
}

#[test]
fn gpu_sampler_matches_cpu_sampler_set_for_set() {
    // The device kernel and the serial reference consume the same
    // per-index RNG stream and traverse in the same order, so every RRR
    // set must be *identical*, not just statistically alike.
    use eim::diffusion::{sample_rng, sample_rrr};
    use eim_core::sampler::sample_batch;
    use eim_core::PlainDeviceGraph;
    use rand::Rng;

    let g = test_graph(29);
    let n = g.num_vertices() as u32;
    for model in [
        DiffusionModel::IndependentCascade,
        DiffusionModel::LinearThreshold,
    ] {
        let device = Device::new(spec());
        let dg = PlainDeviceGraph::new(&g);
        let batch = sample_batch(&device, &dg, model, 1234, 0, 200, false).unwrap();
        for (i, set) in batch.sets.iter().enumerate() {
            let mut rng = sample_rng(1234, i as u64);
            let source: u32 = rng.gen_range(0..n);
            let reference = sample_rrr(&g, model, source, &mut rng);
            assert_eq!(
                set,
                Some(reference.as_slice()),
                "{model}: sample {i} diverged"
            );
        }
    }
}

#[test]
fn gpu_sampler_matches_cpu_store_statistics() {
    // The device sampler and the CPU reference draw from the same RRR
    // distribution: average set sizes across many samples must agree.
    let g = test_graph(3);
    let c = plain_config(DiffusionModel::IndependentCascade);
    let mut gpu = EimEngine::new(&g, c, Device::new(spec()), ScanStrategy::ThreadPerSet).unwrap();
    let mut cpu = CpuEngine::new(&g, c, CpuParallelism::Rayon);
    gpu.extend_to(4_000).unwrap();
    cpu.extend_to(4_000).unwrap();
    let mean = |s: &dyn RrrSets| s.total_elements() as f64 / s.num_sets() as f64;
    let (mg, mc) = (mean(gpu.store()), mean(cpu.store()));
    let rel = (mg - mc).abs() / mc;
    assert!(rel < 0.05, "gpu mean {mg:.3} vs cpu mean {mc:.3}");
}

#[test]
fn scan_strategy_never_changes_results() {
    let g = test_graph(11);
    let c = plain_config(DiffusionModel::IndependentCascade);
    let run = |scan| {
        let mut e = EimEngine::new(&g, c, Device::new(spec()), scan).unwrap();
        run_imm(&mut e, &c).unwrap().seeds
    };
    assert_eq!(
        run(ScanStrategy::ThreadPerSet),
        run(ScanStrategy::WarpPerSet)
    );
}

/// FNV-1a over the store's exact byte layout: set boundaries and every
/// element in order. Byte-identical stores — not merely statistically alike —
/// hash equal.
fn store_digest(s: &dyn RrrSets) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(s.num_sets() as u64);
    for i in 0..s.num_sets() {
        let (lo, hi) = s.set_bounds(i);
        mix(lo as u64);
        mix(hi as u64);
        for idx in lo..hi {
            mix(s.element(idx) as u64);
        }
    }
    h
}

/// Differential harness: run every engine with copy-stream overlap on and
/// forced-serial (the `CopyStream::serialized` escape hatch), under varying
/// rayon thread counts. The overlap transform touches *timing only*: seed
/// sets and sample bytes must be identical, and overlapped simulated time can
/// never exceed the serialized schedule.
#[test]
fn overlap_on_and_off_differ_only_in_time() {
    let g = test_graph(31);
    let c = plain_config(DiffusionModel::IndependentCascade);

    type Outcome = (Vec<u32>, u64, f64);
    type EngineRun<'a> = Box<dyn Fn(bool) -> Outcome + Sync + 'a>;
    let engines: Vec<(&str, EngineRun)> = vec![
        (
            "eim",
            Box::new(|overlap| {
                let d = Device::new(spec()).with_copy_overlap(overlap);
                let mut e = EimEngine::new(&g, c, d, ScanStrategy::ThreadPerSet).unwrap();
                let r = run_imm(&mut e, &c).unwrap();
                (r.seeds, store_digest(e.store()), e.elapsed_us())
            }),
        ),
        (
            "gim",
            Box::new(|overlap| {
                let d = Device::new(spec()).with_copy_overlap(overlap);
                let mut e = GimEngine::new(&g, c, d).unwrap();
                let r = run_imm(&mut e, &c).unwrap();
                (r.seeds, store_digest(e.store()), e.elapsed_us())
            }),
        ),
        (
            "curipples",
            Box::new(|overlap| {
                let d = Device::new(spec()).with_copy_overlap(overlap);
                let mut e = CuRipplesEngine::new(&g, c, d, HostSpec::default()).unwrap();
                let r = run_imm(&mut e, &c).unwrap();
                (r.seeds, store_digest(e.store()), e.elapsed_us())
            }),
        ),
        (
            "multigpu",
            Box::new(|overlap| {
                let mut e = MultiGpuEimEngine::with_telemetry(
                    &g,
                    c,
                    spec(),
                    3,
                    &RunTrace::disabled(),
                    overlap,
                )
                .unwrap();
                let r = run_imm(&mut e, &c).unwrap();
                (r.seeds, store_digest(e.store()), e.elapsed_us())
            }),
        ),
    ];

    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        for (name, run) in &engines {
            let ((seeds_on, digest_on, us_on), (seeds_off, digest_off, us_off)) =
                pool.install(|| (run(true), run(false)));
            assert_eq!(
                seeds_on, seeds_off,
                "{name} ({threads} threads): overlap changed the seed set"
            );
            assert_eq!(
                digest_on, digest_off,
                "{name} ({threads} threads): overlap changed the sample bytes"
            );
            assert!(
                us_on <= us_off,
                "{name} ({threads} threads): overlapped schedule slower \
                 ({us_on:.3} us vs serialized {us_off:.3} us)"
            );
        }
    }
}

#[test]
fn packing_never_changes_results() {
    let g = test_graph(23);
    for elim in [false, true] {
        let base = ImmConfig::paper_default()
            .with_k(4)
            .with_epsilon(0.3)
            .with_seed(77)
            .with_source_elimination(elim);
        let run = |packed: bool| {
            let c = base.with_packed(packed);
            let mut e =
                EimEngine::new(&g, c, Device::new(spec()), ScanStrategy::ThreadPerSet).unwrap();
            run_imm(&mut e, &c).unwrap()
        };
        let plain = run(false);
        let packed = run(true);
        assert_eq!(plain.seeds, packed.seeds, "elim = {elim}");
        assert_eq!(plain.num_sets, packed.num_sets);
        assert!(packed.store_bytes < plain.store_bytes);
    }
}

/// The compressed-residency invariant: the delta-compressed, degree-remapped
/// RRR store is a pure layout change. For every engine, under plain or
/// log-encoded graph/store layouts and 1- or 4-thread rayon pools, the seed
/// set must be byte-identical to the uncompressed run's — in original id
/// space, with the same smallest-id tie-breaks.
#[test]
fn compression_never_changes_results() {
    let g = test_graph(41);

    type Run<'a> = Box<dyn Fn(ImmConfig) -> (Vec<u32>, usize) + Sync + 'a>;
    let engines: Vec<(&str, Run)> = vec![
        (
            "eim",
            Box::new(|c| {
                let mut e =
                    EimEngine::new(&g, c, Device::new(spec()), ScanStrategy::ThreadPerSet).unwrap();
                let r = run_imm(&mut e, &c).unwrap();
                (r.seeds, r.num_sets)
            }),
        ),
        (
            "gim",
            Box::new(|c| {
                let mut e = GimEngine::new(&g, c, Device::new(spec())).unwrap();
                let r = run_imm(&mut e, &c).unwrap();
                (r.seeds, r.num_sets)
            }),
        ),
        (
            "curipples",
            Box::new(|c| {
                let mut e =
                    CuRipplesEngine::new(&g, c, Device::new(spec()), HostSpec::default()).unwrap();
                let r = run_imm(&mut e, &c).unwrap();
                (r.seeds, r.num_sets)
            }),
        ),
        (
            "multigpu",
            Box::new(|c| {
                let mut e = MultiGpuEimEngine::with_telemetry(
                    &g,
                    c,
                    spec(),
                    3,
                    &RunTrace::disabled(),
                    true,
                )
                .unwrap();
                let r = run_imm(&mut e, &c).unwrap();
                (r.seeds, r.num_sets)
            }),
        ),
        (
            "cpu",
            Box::new(|c| {
                let mut e = CpuEngine::new(&g, c, CpuParallelism::Rayon);
                let r = run_imm(&mut e, &c).unwrap();
                (r.seeds, r.num_sets)
            }),
        ),
    ];

    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            for packed in [false, true] {
                let base = plain_config(DiffusionModel::IndependentCascade).with_packed(packed);
                for (name, run) in &engines {
                    let uncompressed = run(base);
                    let compressed = run(base.with_compressed(true));
                    assert_eq!(
                        uncompressed, compressed,
                        "{name} (packed = {packed}, {threads} threads): \
                         compression changed the results"
                    );
                }
            }
        });
    }
}
