//! Checkpoint / kill / resume, end to end.
//!
//! The contract under test: a run interrupted after any checkpoint and
//! resumed from disk produces the *same bytes* as the uninterrupted run —
//! identical seed sets, sample counts, and (for fault-free runs) a
//! bit-identical simulated clock. The guarantee must hold across store
//! layouts (plain and packed), host thread schedules, and device losses.

use std::path::PathBuf;
use std::process::Command;

use eim::core::MultiGpuEimEngine;
use eim::gpusim::{DeviceSpec, FaultSpec, RunTrace};
use eim::graph::{generators, Graph, WeightModel};
use eim::imm::{
    run_fingerprint, run_imm_checkpointed, run_imm_recovering, run_stream, Checkpointing,
    EngineError, HostResampler, ImmConfig, ImmEngine as _, RecoveryPolicy, RunCheckpoint,
    StreamCheckpoint, StreamCheckpointing, StreamingImmEngine,
};

fn graph() -> Graph {
    generators::rmat(
        400,
        2_400,
        generators::RmatParams::GRAPH500,
        WeightModel::WeightedCascade,
        31,
    )
}

fn config(packed: bool) -> ImmConfig {
    ImmConfig::paper_default()
        .with_k(4)
        .with_epsilon(0.2) // tight enough for several estimation rounds
        .with_seed(17)
        .with_packed(packed)
}

fn engine<'g>(g: &'g Graph, c: ImmConfig) -> MultiGpuEimEngine<'g> {
    MultiGpuEimEngine::new(g, c, DeviceSpec::rtx_a6000_with_mem(256 << 20), 4).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eim-ckpt-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Clean run vs kill-after-first-checkpoint + resume, over
/// {plain, packed} × {1, 4} rayon threads. Seeds, set counts, and the
/// simulated clock must all survive the round trip bit for bit.
#[test]
fn kill_and_resume_reproduce_the_clean_run_exactly() {
    let g = graph();
    for packed in [false, true] {
        let c = config(packed);
        let fp = run_fingerprint(&c, g.num_vertices(), "multigpu", 4);
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (clean, killed_err, resumed) = pool.install(|| {
                let mut e = engine(&g, c);
                let clean =
                    run_imm_recovering(&mut e, &c, &RecoveryPolicy::retry(), &RunTrace::disabled())
                        .unwrap();
                let clean = (clean.seeds, clean.num_sets, e.elapsed_us().to_bits());

                let dir = temp_dir(&format!("kr-{packed}-{threads}"));
                let mut e = engine(&g, c);
                let killed_err = run_imm_checkpointed(
                    &mut e,
                    &c,
                    &RecoveryPolicy::retry(),
                    &RunTrace::disabled(),
                    &Checkpointing {
                        dir: Some(dir.clone()),
                        resume: None,
                        kill_after: Some(1),
                        fingerprint: fp,
                    },
                )
                .unwrap_err();

                let cp = RunCheckpoint::load(&dir).unwrap();
                let mut e = engine(&g, c);
                let r = run_imm_checkpointed(
                    &mut e,
                    &c,
                    &RecoveryPolicy::retry(),
                    &RunTrace::disabled(),
                    &Checkpointing {
                        dir: Some(dir.clone()),
                        resume: Some(cp),
                        kill_after: None,
                        fingerprint: fp,
                    },
                )
                .unwrap();
                let _ = std::fs::remove_dir_all(&dir);
                let resumed = (
                    r.seeds,
                    r.num_sets,
                    e.elapsed_us().to_bits(),
                    r.recovery.resumes,
                );
                (clean, killed_err, resumed)
            });
            assert!(
                matches!(
                    killed_err,
                    EngineError::Interrupted {
                        checkpoints_written: 1
                    }
                ),
                "packed={packed} threads={threads}: {killed_err}"
            );
            assert_eq!(
                (resumed.0, resumed.1, resumed.2),
                clean,
                "packed={packed} threads={threads}: resume diverged from the clean run"
            );
            assert_eq!(resumed.3, 1, "resume counter");
        }
    }
}

/// A run that loses devices mid-flight, and a kill/resume of that same
/// faulted run, must both return the clean answer byte for byte (timing is
/// allowed to differ — retries and re-sharding cost simulated time).
#[test]
fn device_loss_with_kill_and_resume_preserves_the_answer() {
    let g = graph();
    for packed in [false, true] {
        let c = config(packed);
        let fp = run_fingerprint(&c, g.num_vertices(), "multigpu", 4);
        let clean = {
            let mut e = engine(&g, c);
            let r = run_imm_recovering(&mut e, &c, &RecoveryPolicy::retry(), &RunTrace::disabled())
                .unwrap();
            (r.seeds, r.num_sets)
        };
        // Deterministic sweep for a plan that kills at least one device but
        // leaves survivors.
        let mut exercised = false;
        for fault_seed in 1..40u64 {
            let spec = FaultSpec::parse(&format!("seed={fault_seed},device_fail=0.02")).unwrap();
            let run = |ckpt: &Checkpointing| {
                let mut e = engine(&g, c).with_faults(&spec);
                run_imm_checkpointed(
                    &mut e,
                    &c,
                    &RecoveryPolicy::retry(),
                    &RunTrace::disabled(),
                    ckpt,
                )
            };
            let full = match run(&Checkpointing::disabled()) {
                Ok(r) => r,
                Err(EngineError::RetriesExhausted { .. }) => continue, // all four died
                Err(e) => panic!("unexpected: {e}"),
            };
            if full.recovery.devices_evicted == 0 {
                continue;
            }
            assert_eq!(
                full.seeds, clean.0,
                "seed={fault_seed}: eviction moved the answer"
            );
            assert_eq!(full.num_sets, clean.1);

            let dir = temp_dir(&format!("loss-{packed}-{fault_seed}"));
            let killed = run(&Checkpointing {
                dir: Some(dir.clone()),
                resume: None,
                kill_after: Some(1),
                fingerprint: fp,
            });
            assert!(matches!(killed, Err(EngineError::Interrupted { .. })));
            let cp = RunCheckpoint::load(&dir).unwrap();
            let resumed = run(&Checkpointing {
                dir: Some(dir.clone()),
                resume: Some(cp),
                kill_after: None,
                fingerprint: fp,
            })
            .unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            assert_eq!(
                resumed.seeds, clean.0,
                "seed={fault_seed}: resume moved the answer"
            );
            assert_eq!(resumed.num_sets, clean.1);
            exercised = true;
            break;
        }
        assert!(
            exercised,
            "packed={packed}: no fault seed produced an eviction"
        );
    }
}

/// Straggler windows slow a device down without killing it: answers match
/// the clean run exactly and only the simulated clock moves.
#[test]
fn straggler_run_matches_clean_and_costs_time() {
    let g = graph();
    let c = config(false);
    let (clean, clean_time) = {
        let mut e = engine(&g, c);
        let r = run_imm_recovering(&mut e, &c, &RecoveryPolicy::retry(), &RunTrace::disabled())
            .unwrap();
        ((r.seeds, r.num_sets), e.elapsed_us())
    };
    let spec = FaultSpec::parse("seed=3,straggler=6.0@0:48").unwrap();
    let mut e = engine(&g, c).with_faults(&spec);
    let r =
        run_imm_recovering(&mut e, &c, &RecoveryPolicy::retry(), &RunTrace::disabled()).unwrap();
    assert_eq!((r.seeds, r.num_sets), clean);
    assert!(
        e.elapsed_us() > clean_time,
        "straggler cost no simulated time ({} vs {})",
        e.elapsed_us(),
        clean_time
    );
}

/// A streaming run killed mid-update-stream and resumed from its checkpoint
/// finishes with bit-identical seeds and store bytes. The checkpoint's delta
/// cursor decides where the resume picks up, and its store digest gates the
/// replayed state — both must survive the JSON round trip.
#[test]
fn streaming_kill_and_resume_reproduce_the_clean_run() {
    let g = graph();
    let c = config(false).with_epsilon(0.3);
    let deltas = generators::update_stream(
        &g,
        &generators::UpdateStreamSpec {
            batches: 3,
            edges_per_batch: 10,
            insert_fraction: 0.5,
            seed: 41,
        },
    );
    let fresh = || {
        StreamingImmEngine::new(
            g.clone(),
            c,
            WeightModel::WeightedCascade,
            7,
            HostResampler::new(c.model, c.seed),
        )
    };

    let mut clean_engine = fresh();
    let clean = run_stream(&mut clean_engine, &deltas, &StreamCheckpointing::disabled()).unwrap();
    assert_eq!(clean.len(), deltas.len());

    // Kill after the second checkpoint: the initial run and batch 1 are
    // committed, batches 2..3 are still pending — a genuine mid-stream kill.
    let dir = temp_dir("stream");
    let killed = run_stream(
        &mut fresh(),
        &deltas,
        &StreamCheckpointing {
            dir: Some(dir.clone()),
            resume: false,
            kill_after: Some(2),
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            killed,
            EngineError::Interrupted {
                checkpoints_written: 2
            }
        ),
        "{killed}"
    );
    let cp = StreamCheckpoint::load(&dir).unwrap();
    assert_eq!(cp.delta_cursor, 1, "one batch was applied before the kill");

    let mut resumed_engine = fresh();
    let resumed = run_stream(
        &mut resumed_engine,
        &deltas,
        &StreamCheckpointing {
            dir: Some(dir.clone()),
            resume: true,
            kill_after: None,
        },
    )
    .unwrap();
    assert_eq!(resumed.len(), deltas.len() - 1, "resume skips batch 1");
    for (r, c_) in resumed.iter().zip(&clean[1..]) {
        assert_eq!(r.batch, c_.batch);
        assert_eq!(r.result, c_.result, "batch {}: resume diverged", r.batch);
        assert_eq!(r.resampled_slots, c_.resampled_slots, "batch {}", r.batch);
    }
    assert_eq!(resumed_engine.store_digest(), clean_engine.store_digest());
    assert_eq!(resumed_engine.delta_cursor(), clean_engine.delta_cursor());

    // A tampered store digest must be refused: the digest field is what
    // proves the deterministic replay reconstructed the checkpointed state.
    let bad = StreamCheckpoint {
        store_digest: cp.store_digest ^ 1,
        ..cp
    };
    bad.save(&dir).unwrap();
    let err = run_stream(
        &mut fresh(),
        &deltas,
        &StreamCheckpointing {
            dir: Some(dir.clone()),
            resume: true,
            kill_after: None,
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, EngineError::CheckpointMismatch { .. }),
        "{err}"
    );

    // And a mismatched run config must be refused by the fingerprint.
    cp.save(&dir).unwrap();
    let c2 = c.with_k(5);
    let mut other = StreamingImmEngine::new(
        g.clone(),
        c2,
        WeightModel::WeightedCascade,
        7,
        HostResampler::new(c2.model, c2.seed),
    );
    let err = run_stream(
        &mut other,
        &deltas,
        &StreamCheckpointing {
            dir: Some(dir.clone()),
            resume: true,
            kill_after: None,
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, EngineError::CheckpointMismatch { .. }),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming against a shorter update stream than the checkpoint's cursor is
/// a clean [`EngineError::CheckpointMismatch`], not a slice panic. The store
/// digest cannot be relied on to catch this: the missing trailing batches
/// may have been structural no-ops, leaving the digests equal.
#[test]
fn streaming_resume_rejects_a_shorter_stream() {
    let g = graph();
    let c = config(false).with_epsilon(0.3);
    let deltas = generators::update_stream(
        &g,
        &generators::UpdateStreamSpec {
            batches: 3,
            edges_per_batch: 10,
            insert_fraction: 0.5,
            seed: 47,
        },
    );
    let fresh = || {
        StreamingImmEngine::new(
            g.clone(),
            c,
            WeightModel::WeightedCascade,
            7,
            HostResampler::new(c.model, c.seed),
        )
    };
    let dir = temp_dir("stream-short");
    run_stream(
        &mut fresh(),
        &deltas,
        &StreamCheckpointing {
            dir: Some(dir.clone()),
            resume: false,
            kill_after: None,
        },
    )
    .unwrap();
    assert_eq!(StreamCheckpoint::load(&dir).unwrap().delta_cursor, 3);

    let err = run_stream(
        &mut fresh(),
        &deltas[..1],
        &StreamCheckpointing {
            dir: Some(dir.clone()),
            resume: true,
            kill_after: None,
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::CheckpointMismatch {
                expected: 1,
                found: 3
            }
        ),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- the same contract through the binary ----

fn eim_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eim"))
}

const CLI_BASE: [&str; 15] = [
    "--dataset",
    "WV",
    "--scale",
    "0.02",
    "--k",
    "4",
    "--eps",
    "0.3",
    "--seed",
    "9",
    "--engine",
    "multigpu",
    "--devices",
    "4",
    "--json",
];

#[test]
fn cli_kill_and_resume_reproduce_the_clean_run() {
    let dir = temp_dir("cli");
    let dir_s = dir.to_str().unwrap();

    let clean = eim_cli().args(CLI_BASE).output().unwrap();
    assert!(clean.status.success());
    let clean_v: serde_json::Value = serde_json::from_slice(&clean.stdout).unwrap();

    let killed = eim_cli()
        .args(CLI_BASE)
        .args(["--checkpoint", dir_s, "--ckpt-kill-after", "1"])
        .output()
        .unwrap();
    assert_eq!(
        killed.status.code(),
        Some(3),
        "interrupted runs exit 3 (resumable): {}",
        String::from_utf8_lossy(&killed.stderr)
    );
    let killed_v: serde_json::Value = serde_json::from_slice(&killed.stdout).unwrap();
    assert_eq!(killed_v["error"]["kind"], "interrupted");
    assert_eq!(killed_v["error"]["checkpoints_written"], 1);

    let resumed = eim_cli()
        .args(CLI_BASE)
        .args(["--checkpoint", dir_s, "--resume"])
        .output()
        .unwrap();
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&resumed.stdout).unwrap();
    assert_eq!(v["seeds"], clean_v["seeds"]);
    assert_eq!(v["rrr_sets"], clean_v["rrr_sets"]);
    assert_eq!(v["simulated_device_ms"], clean_v["simulated_device_ms"]);
    assert_eq!(v["recovery"]["resumes"], 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_resume_requires_a_checkpoint_dir() {
    let out = eim_cli().args(CLI_BASE).arg("--resume").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "usage error");
}

#[test]
fn cli_resume_with_mismatched_config_is_rejected() {
    let dir = temp_dir("cli-mismatch");
    let dir_s = dir.to_str().unwrap();
    let killed = eim_cli()
        .args(CLI_BASE)
        .args(["--checkpoint", dir_s, "--ckpt-kill-after", "1"])
        .output()
        .unwrap();
    assert_eq!(killed.status.code(), Some(3));
    // Same checkpoint, different k: the fingerprint must refuse it.
    let mut args: Vec<&str> = CLI_BASE.to_vec();
    args[5] = "5";
    let out = eim_cli()
        .args(&args)
        .args(["--checkpoint", dir_s, "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compressed-residency runs honor the same checkpoint contract: a killed
/// and resumed compressed run reproduces the clean compressed run bit for
/// bit, and both return the same seeds as the uncompressed run.
#[test]
fn compressed_kill_and_resume_reproduce_the_clean_run() {
    let g = graph();
    let plain = {
        let c = config(true);
        let mut e = engine(&g, c);
        run_imm_recovering(&mut e, &c, &RecoveryPolicy::retry(), &RunTrace::disabled())
            .unwrap()
            .seeds
    };

    let c = config(true).with_compressed(true);
    let fp = run_fingerprint(&c, g.num_vertices(), "multigpu", 4);
    let mut e = engine(&g, c);
    let clean =
        run_imm_recovering(&mut e, &c, &RecoveryPolicy::retry(), &RunTrace::disabled()).unwrap();
    let clean = (clean.seeds, clean.num_sets, e.elapsed_us().to_bits());
    assert_eq!(clean.0, plain, "compression moved the answer");

    let dir = temp_dir("ckr");
    let mut e = engine(&g, c);
    let killed = run_imm_checkpointed(
        &mut e,
        &c,
        &RecoveryPolicy::retry(),
        &RunTrace::disabled(),
        &Checkpointing {
            dir: Some(dir.clone()),
            resume: None,
            kill_after: Some(1),
            fingerprint: fp,
        },
    );
    assert!(matches!(killed, Err(EngineError::Interrupted { .. })));

    let cp = RunCheckpoint::load(&dir).unwrap();
    let mut e = engine(&g, c);
    let r = run_imm_checkpointed(
        &mut e,
        &c,
        &RecoveryPolicy::retry(),
        &RunTrace::disabled(),
        &Checkpointing {
            dir: Some(dir.clone()),
            resume: Some(cp),
            kill_after: None,
            fingerprint: fp,
        },
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        (r.seeds, r.num_sets, e.elapsed_us().to_bits()),
        clean,
        "compressed resume diverged from the clean compressed run"
    );
}
