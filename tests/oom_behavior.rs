//! Device-capacity behaviour across engines — the mechanism behind the
//! OOM cells of Tables 2-5 and cuRipples' "scales but slowly" story.

use eim::baselines::{CuRipplesEngine, GimEngine, HostSpec};
use eim::core::{EimEngine, ScanStrategy};
use eim::gpusim::{Device, DeviceSpec};
use eim::graph::generators;
use eim::imm::{run_imm, EngineError, ImmConfig};
use eim::prelude::*;

fn graph() -> Graph {
    generators::rmat(
        1_500,
        12_000,
        generators::RmatParams::GRAPH500,
        WeightModel::WeightedCascade,
        31,
    )
}

fn config() -> ImmConfig {
    ImmConfig::paper_default()
        .with_k(10)
        .with_epsilon(0.1)
        .with_seed(5)
}

/// Smallest device (in MB steps) on which the closure completes.
fn min_viable_mb(run: impl Fn(usize) -> bool) -> usize {
    for mb in 1..=256 {
        if run(mb << 20) {
            return mb;
        }
    }
    257
}

#[test]
fn eim_defaults_survive_smaller_devices_than_stripped_eim() {
    let g = graph();
    let full = min_viable_mb(|mem| {
        let c = config();
        EimEngine::new(
            &g,
            c,
            Device::new(DeviceSpec::rtx_a6000_with_mem(mem)),
            ScanStrategy::ThreadPerSet,
        )
        .and_then(|mut e| run_imm(&mut e, &c))
        .is_ok()
    });
    let stripped = min_viable_mb(|mem| {
        let c = config().with_packed(false).with_source_elimination(false);
        EimEngine::new(
            &g,
            c,
            Device::new(DeviceSpec::rtx_a6000_with_mem(mem)),
            ScanStrategy::ThreadPerSet,
        )
        .and_then(|mut e| run_imm(&mut e, &c))
        .is_ok()
    });
    assert!(
        full < stripped,
        "eIM defaults need {full} MB, stripped needs {stripped} MB"
    );
}

#[test]
fn gim_needs_more_memory_than_eim() {
    let g = graph();
    let eim_mb = min_viable_mb(|mem| {
        let c = config();
        EimEngine::new(
            &g,
            c,
            Device::new(DeviceSpec::rtx_a6000_with_mem(mem)),
            ScanStrategy::ThreadPerSet,
        )
        .and_then(|mut e| run_imm(&mut e, &c))
        .is_ok()
    });
    let gim_mb = min_viable_mb(|mem| {
        let c = config().with_packed(false).with_source_elimination(false);
        GimEngine::new(&g, c, Device::new(DeviceSpec::rtx_a6000_with_mem(mem)))
            .and_then(|mut e| run_imm(&mut e, &c))
            .is_ok()
    });
    assert!(gim_mb > eim_mb, "gIM {gim_mb} MB vs eIM {eim_mb} MB");
}

#[test]
fn curipples_survives_where_gim_ooms() {
    let g = graph();
    let c = config().with_packed(false).with_source_elimination(false);
    // Pick a capacity just above cuRipples' floor (graph + scratch only)
    // but below gIM's needs.
    let floor = min_viable_mb(|mem| {
        CuRipplesEngine::new(
            &g,
            c,
            Device::new(DeviceSpec::rtx_a6000_with_mem(mem)),
            HostSpec::default(),
        )
        .and_then(|mut e| run_imm(&mut e, &c))
        .is_ok()
    });
    let mem = (floor + 1) << 20;
    let cu_ok = CuRipplesEngine::new(
        &g,
        c,
        Device::new(DeviceSpec::rtx_a6000_with_mem(mem)),
        HostSpec::default(),
    )
    .and_then(|mut e| run_imm(&mut e, &c))
    .is_ok();
    assert!(cu_ok);
    let gim = GimEngine::new(&g, c, Device::new(DeviceSpec::rtx_a6000_with_mem(mem)))
        .and_then(|mut e| run_imm(&mut e, &c));
    assert!(
        matches!(gim, Err(EngineError::OutOfMemory { .. })),
        "expected gIM OOM at {} MB",
        mem >> 20
    );
}

#[test]
fn oom_error_carries_capacity_context() {
    let g = graph();
    let c = config();
    let err = EimEngine::new(
        &g,
        c,
        Device::new(DeviceSpec::rtx_a6000_with_mem(64 << 10)),
        ScanStrategy::ThreadPerSet,
    )
    .err()
    .expect("64 KB cannot hold the graph");
    match err {
        EngineError::OutOfMemory {
            requested,
            in_use,
            capacity,
        } => {
            assert_eq!(capacity, 64 << 10);
            assert!(requested > 0);
            // Nothing was resident yet: the graph upload is the first alloc.
            assert_eq!(in_use, 0);
            assert!(requested > capacity - in_use);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
}
