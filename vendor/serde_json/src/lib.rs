//! Vendored, dependency-free JSON support mirroring the slice of the
//! `serde_json` API this workspace uses: a [`Value`] tree, a strict parser
//! ([`from_slice`]/[`from_str`]), compact and pretty serializers
//! ([`to_string`]/[`to_string_pretty`]), and a [`json!`] macro.
//!
//! Object keys keep insertion order (like `serde_json` with its
//! `preserve_order` feature), which keeps emitted files stable and diffable.

use std::fmt;

mod parse;
mod ser;

pub use parse::{from_slice, from_str, FromJson};
pub use ser::{to_string, to_string_pretty, to_vec, to_writer};

/// A JSON number: unsigned, signed or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The value as `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::PosInt(a), Number::NegInt(b)) | (Number::NegInt(b), Number::PosInt(a)) => {
                i64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            (Number::Float(f), other) | (other, Number::Float(f)) => *f == other.as_f64(),
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, replacing any existing entry in place.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        let key = key.into();
        let value = value.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean value, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers convert losslessly enough).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string value, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ser::to_string(self).map_err(|_| fmt::Error)?)
    }
}

// --- conversions ---------------------------------------------------------

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::PosInt(v as u64)) }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, usize);

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}
from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

// --- comparisons used by tests ------------------------------------------

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                *self == Value::from(*other)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                Value::from(*self) == *other
            }
        }
    )*};
}
eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, bool);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// Error produced by parsing or serialization.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Builds a [`Value`] from literal-ish syntax.
///
/// Supported forms: `null`, scalars/expressions (anything with
/// `Into<Value>`), arrays of expressions, and brace objects whose keys are
/// string literals and whose values are expressions — nest objects by
/// nesting `json!({...})` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key, $crate::Value::from($value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({
            "name": "eim",
            "k": 3usize,
            "ratio": 0.5,
            "seeds": vec![1u32, 2, 3],
            "missing": Option::<f64>::None,
            "nested": json!({ "a": 1, "b": [] }),
        });
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&s).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn index_and_eq() {
        let v: Value = from_str(r#"{"k":3,"name":"wv","xs":[1,2.5,true,null]}"#).unwrap();
        assert_eq!(v["k"], 3);
        assert_eq!(v["name"], "wv");
        assert_eq!(v["xs"].as_array().unwrap().len(), 4);
        assert_eq!(v["xs"][1].as_f64(), Some(2.5));
        assert!(v["nope"].is_null());
    }

    #[test]
    fn parses_escapes_and_exponents() {
        let v: Value = from_str(r#"{"s":"a\"b\nA","e":1.5e3,"n":-12}"#).unwrap();
        assert_eq!(v["s"], "a\"b\nA");
        assert_eq!(v["e"].as_f64(), Some(1500.0));
        assert_eq!(v["n"].as_i64(), Some(-12));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn float_formatting_stays_json() {
        let s = to_string(&json!({ "a": 40.0f64, "b": 0.125 })).unwrap();
        let v: Value = from_str(&s).unwrap();
        assert_eq!(v["a"].as_f64(), Some(40.0));
        assert_eq!(v["b"].as_f64(), Some(0.125));
    }
}
