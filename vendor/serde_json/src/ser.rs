//! Compact and pretty JSON serializers.

use crate::{Error, Number, Value};

/// Serializes compactly.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    Ok(out)
}

/// Serializes with two-space indentation.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, Some("  "), 0);
    Ok(out)
}

/// Serializes compactly to bytes.
pub fn to_vec(v: &Value) -> Result<Vec<u8>, Error> {
    to_string(v).map(String::into_bytes)
}

/// Serializes compactly into a writer.
pub fn to_writer<W: std::io::Write>(mut w: W, v: &Value) -> Result<(), Error> {
    let s = to_string(v)?;
    w.write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if !f.is_finite() {
                // JSON has no NaN/inf; emit null like permissive encoders.
                out.push_str("null");
            } else if f == f.trunc() && f.abs() < 1e15 {
                // Keep a trailing .0 so the value round-trips as a float.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
