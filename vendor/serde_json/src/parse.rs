//! A strict recursive-descent JSON parser.

use crate::{Error, Map, Number, Value};

/// Types deserializable from a parsed [`Value`].
pub trait FromJson: Sized {
    /// Converts the parsed tree into `Self`.
    fn from_json_value(v: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

/// Parses JSON from bytes.
pub fn from_slice<T: FromJson>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Parses JSON from a string.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_json_value(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected '{}' at offset {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(out)),
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at offset {}, found '{}'",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at offset {}, found '{}'",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    c => {
                        return Err(Error::new(format!("invalid escape '\\{}'", c as char)));
                    }
                },
                c if c < 0x20 => return Err(Error::new("control character in string")),
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Multi-byte UTF-8: collect the full sequence.
                    let extra = match c {
                        0xC0..=0xDF => 1,
                        0xE0..=0xEF => 2,
                        0xF0..=0xF7 => 3,
                        _ => return Err(Error::new("invalid utf-8 in string")),
                    };
                    let start = self.pos - 1;
                    for _ in 0..extra {
                        self.bump()?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else {
            self.digits()?;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|e| Error::new(format!("bad number '{text}': {e}")))?,
            )
        } else if text.starts_with('-') {
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|e| Error::new(format!("bad number '{text}': {e}")))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|e| Error::new(format!("bad number '{text}': {e}")))?,
            )
        };
        Ok(Value::Number(n))
    }

    fn digits(&mut self) -> Result<(), Error> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(Error::new(format!("expected digits at offset {start}")));
        }
        Ok(())
    }
}
