//! Vendored, dependency-free ChaCha8 random number generator.
//!
//! Implements the genuine ChaCha stream cipher with 8 rounds, a 64-bit block
//! counter and a 64-bit stream id, producing the same u32/u64 output stream
//! as `rand_chacha::ChaCha8Rng` 0.3 (including the block-boundary behaviour
//! of `rand_core`'s `BlockRng` for `next_u64`).
//!
//! The generator buffers [`BUF_BLOCKS`] keystream blocks per refill and fills
//! them with the widest available backend: 8 blocks per pass with AVX2
//! (runtime-detected), 4 with baseline SSE2 on x86-64, or one at a time with
//! the portable scalar core elsewhere. All backends emit the identical
//! keystream — block `i` only depends on the input state and the counter —
//! so the output is machine-independent; the ChaCha hot loop is the dominant
//! cost of RRR sampling, which is why the refill is vectorised at all.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// Keystream blocks generated per refill; sized for one AVX2 pass.
const BUF_BLOCKS: usize = 8;
const BUF_WORDS: usize = BLOCK_WORDS * BUF_BLOCKS;

/// A cryptographically-derived (though here statistics-grade) RNG: ChaCha
/// with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The 16-word input block: constants, key, counter, stream.
    state: [u32; BLOCK_WORDS],
    /// Buffered keystream: `BUF_BLOCKS` consecutive output blocks.
    buf: [u32; BUF_WORDS],
    /// Next unread index into `buf`; `BUF_WORDS` means exhausted.
    index: usize,
}

// The scalar core is the refill backend on non-x86_64 targets and the
// ground-truth oracle for the SIMD equivalence tests, so on x86_64 lib
// builds it is intentionally unreferenced.
#[allow(dead_code)]
#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// Generates the single keystream block at `state`'s current counter into
/// `out` using the portable scalar core.
#[allow(dead_code)]
fn block_scalar(state: &[u32; BLOCK_WORDS], out: &mut [u32]) {
    let mut w = *state;
    for _ in 0..4 {
        // Column round.
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for i in 0..BLOCK_WORDS {
        out[i] = w[i].wrapping_add(state[i]);
    }
}

/// Advances the 64-bit counter in words 12..13 by `n` blocks.
#[inline(always)]
fn advance_counter(state: &mut [u32; BLOCK_WORDS], n: u32) {
    let (lo, carry) = state[12].overflowing_add(n);
    state[12] = lo;
    if carry {
        state[13] = state[13].wrapping_add(1);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Multi-block ChaCha8 cores: lane `l` of every SIMD word-vector holds
    //! word `w` of keystream block `counter + l`, so one pass over the 16
    //! word-vectors produces LANES consecutive blocks. A final in-register
    //! transpose lands each block's 16 words contiguously in the buffer.

    use super::{BLOCK_WORDS, BUF_BLOCKS};
    use std::arch::x86_64::*;

    macro_rules! qr4 {
        ($w:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {
            $w[$a] = _mm_add_epi32($w[$a], $w[$b]);
            $w[$d] = rotl4::<16, 16>(_mm_xor_si128($w[$d], $w[$a]));
            $w[$c] = _mm_add_epi32($w[$c], $w[$d]);
            $w[$b] = rotl4::<12, 20>(_mm_xor_si128($w[$b], $w[$c]));
            $w[$a] = _mm_add_epi32($w[$a], $w[$b]);
            $w[$d] = rotl4::<8, 24>(_mm_xor_si128($w[$d], $w[$a]));
            $w[$c] = _mm_add_epi32($w[$c], $w[$d]);
            $w[$b] = rotl4::<7, 25>(_mm_xor_si128($w[$b], $w[$c]));
        };
    }

    macro_rules! qr8 {
        ($w:ident, $m16:ident, $m8:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {
            $w[$a] = _mm256_add_epi32($w[$a], $w[$b]);
            $w[$d] = _mm256_shuffle_epi8(_mm256_xor_si256($w[$d], $w[$a]), $m16);
            $w[$c] = _mm256_add_epi32($w[$c], $w[$d]);
            $w[$b] = rotl8::<12, 20>(_mm256_xor_si256($w[$b], $w[$c]));
            $w[$a] = _mm256_add_epi32($w[$a], $w[$b]);
            $w[$d] = _mm256_shuffle_epi8(_mm256_xor_si256($w[$d], $w[$a]), $m8);
            $w[$c] = _mm256_add_epi32($w[$c], $w[$d]);
            $w[$b] = rotl8::<7, 25>(_mm256_xor_si256($w[$b], $w[$c]));
        };
    }

    #[inline(always)]
    unsafe fn rotl4<const L: i32, const R: i32>(x: __m128i) -> __m128i {
        _mm_or_si128(_mm_slli_epi32(x, L), _mm_srli_epi32(x, R))
    }

    #[inline(always)]
    unsafe fn rotl8<const L: i32, const R: i32>(x: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi32(x, L), _mm256_srli_epi32(x, R))
    }

    /// Fills `out` (four consecutive blocks) with SSE2, which is part of the
    /// x86-64 baseline and therefore unconditionally available.
    pub fn blocks4_sse2(state: &[u32; BLOCK_WORDS], out: &mut [u32]) {
        debug_assert!(out.len() >= 4 * BLOCK_WORDS);
        unsafe { blocks4_sse2_inner(state, out) }
    }

    unsafe fn blocks4_sse2_inner(state: &[u32; BLOCK_WORDS], out: &mut [u32]) {
        let mut input = [_mm_setzero_si128(); BLOCK_WORDS];
        for w in 0..BLOCK_WORDS {
            input[w] = _mm_set1_epi32(state[w] as i32);
        }
        // Per-lane counters c..c+3; unsigned-wrap carry into word 13 via a
        // sign-flipped signed compare (SSE2 has no unsigned compare).
        let base = _mm_set1_epi32(state[12] as i32);
        let lo = _mm_add_epi32(base, _mm_set_epi32(3, 2, 1, 0));
        input[12] = lo;
        let bias = _mm_set1_epi32(i32::MIN);
        let carry = _mm_cmplt_epi32(_mm_xor_si128(lo, bias), _mm_xor_si128(base, bias));
        input[13] = _mm_sub_epi32(_mm_set1_epi32(state[13] as i32), carry);
        let mut w = input;
        for _ in 0..4 {
            qr4!(w, 0, 4, 8, 12);
            qr4!(w, 1, 5, 9, 13);
            qr4!(w, 2, 6, 10, 14);
            qr4!(w, 3, 7, 11, 15);
            qr4!(w, 0, 5, 10, 15);
            qr4!(w, 1, 6, 11, 12);
            qr4!(w, 2, 7, 8, 13);
            qr4!(w, 3, 4, 9, 14);
        }
        for i in 0..BLOCK_WORDS {
            w[i] = _mm_add_epi32(w[i], input[i]);
        }
        // 4x4 transposes per group of four word-vectors: row l of the group
        // is lane l's words 4g..4g+4, i.e. block l's slice of the buffer.
        let out = out.as_mut_ptr();
        for g in 0..4 {
            let t0 = _mm_unpacklo_epi32(w[4 * g], w[4 * g + 1]);
            let t1 = _mm_unpacklo_epi32(w[4 * g + 2], w[4 * g + 3]);
            let t2 = _mm_unpackhi_epi32(w[4 * g], w[4 * g + 1]);
            let t3 = _mm_unpackhi_epi32(w[4 * g + 2], w[4 * g + 3]);
            _mm_storeu_si128(out.add(4 * g) as *mut __m128i, _mm_unpacklo_epi64(t0, t1));
            _mm_storeu_si128(
                out.add(BLOCK_WORDS + 4 * g) as *mut __m128i,
                _mm_unpackhi_epi64(t0, t1),
            );
            _mm_storeu_si128(
                out.add(2 * BLOCK_WORDS + 4 * g) as *mut __m128i,
                _mm_unpacklo_epi64(t2, t3),
            );
            _mm_storeu_si128(
                out.add(3 * BLOCK_WORDS + 4 * g) as *mut __m128i,
                _mm_unpackhi_epi64(t2, t3),
            );
        }
    }

    /// Fills `out` (eight consecutive blocks) in one AVX2 pass; the 16-bit
    /// and 8-bit rotates are single `pshufb` shuffles.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn blocks8_avx2(state: &[u32; BLOCK_WORDS], out: &mut [u32]) {
        debug_assert!(out.len() >= BUF_BLOCKS * BLOCK_WORDS);
        let m16 = _mm256_set_epi8(
            13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2, 13, 12, 15, 14, 9, 8, 11, 10, 5,
            4, 7, 6, 1, 0, 3, 2,
        );
        let m8 = _mm256_set_epi8(
            14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3, 14, 13, 12, 15, 10, 9, 8, 11, 6,
            5, 4, 7, 2, 1, 0, 3,
        );
        let mut input = [_mm256_setzero_si256(); BLOCK_WORDS];
        for w in 0..BLOCK_WORDS {
            input[w] = _mm256_set1_epi32(state[w] as i32);
        }
        let base = _mm256_set1_epi32(state[12] as i32);
        let lo = _mm256_add_epi32(base, _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0));
        input[12] = lo;
        let bias = _mm256_set1_epi32(i32::MIN);
        let carry = _mm256_cmpgt_epi32(_mm256_xor_si256(base, bias), _mm256_xor_si256(lo, bias));
        input[13] = _mm256_sub_epi32(_mm256_set1_epi32(state[13] as i32), carry);
        let mut w = input;
        for _ in 0..4 {
            qr8!(w, m16, m8, 0, 4, 8, 12);
            qr8!(w, m16, m8, 1, 5, 9, 13);
            qr8!(w, m16, m8, 2, 6, 10, 14);
            qr8!(w, m16, m8, 3, 7, 11, 15);
            qr8!(w, m16, m8, 0, 5, 10, 15);
            qr8!(w, m16, m8, 1, 6, 11, 12);
            qr8!(w, m16, m8, 2, 7, 8, 13);
            qr8!(w, m16, m8, 3, 4, 9, 14);
        }
        for i in 0..BLOCK_WORDS {
            w[i] = _mm256_add_epi32(w[i], input[i]);
        }
        // Two 8x8 u32 transposes (words 0..8 and 8..16): row l of each group
        // is lane l's half-block, stored into block l's buffer slice.
        let out = out.as_mut_ptr();
        for g in 0..2 {
            let v = &w[8 * g..8 * g + 8];
            let t0 = _mm256_unpacklo_epi32(v[0], v[1]);
            let t1 = _mm256_unpackhi_epi32(v[0], v[1]);
            let t2 = _mm256_unpacklo_epi32(v[2], v[3]);
            let t3 = _mm256_unpackhi_epi32(v[2], v[3]);
            let t4 = _mm256_unpacklo_epi32(v[4], v[5]);
            let t5 = _mm256_unpackhi_epi32(v[4], v[5]);
            let t6 = _mm256_unpacklo_epi32(v[6], v[7]);
            let t7 = _mm256_unpackhi_epi32(v[6], v[7]);
            let u0 = _mm256_unpacklo_epi64(t0, t2);
            let u1 = _mm256_unpackhi_epi64(t0, t2);
            let u2 = _mm256_unpacklo_epi64(t1, t3);
            let u3 = _mm256_unpackhi_epi64(t1, t3);
            let u4 = _mm256_unpacklo_epi64(t4, t6);
            let u5 = _mm256_unpackhi_epi64(t4, t6);
            let u6 = _mm256_unpacklo_epi64(t5, t7);
            let u7 = _mm256_unpackhi_epi64(t5, t7);
            let rows = [
                _mm256_permute2x128_si256(u0, u4, 0x20),
                _mm256_permute2x128_si256(u1, u5, 0x20),
                _mm256_permute2x128_si256(u2, u6, 0x20),
                _mm256_permute2x128_si256(u3, u7, 0x20),
                _mm256_permute2x128_si256(u0, u4, 0x31),
                _mm256_permute2x128_si256(u1, u5, 0x31),
                _mm256_permute2x128_si256(u2, u6, 0x31),
                _mm256_permute2x128_si256(u3, u7, 0x31),
            ];
            for (lane, row) in rows.iter().enumerate() {
                _mm256_storeu_si256(out.add(lane * BLOCK_WORDS + 8 * g) as *mut __m256i, *row);
            }
        }
    }
}

impl ChaCha8Rng {
    /// Generates the next `BUF_BLOCKS` blocks into `buf` and advances the
    /// counter. Backend choice never changes the keystream.
    #[inline(never)]
    fn refill(&mut self) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                unsafe { x86::blocks8_avx2(&self.state, &mut self.buf) };
            } else {
                let mut s = self.state;
                x86::blocks4_sse2(&s, &mut self.buf[..4 * BLOCK_WORDS]);
                advance_counter(&mut s, 4);
                x86::blocks4_sse2(&s, &mut self.buf[4 * BLOCK_WORDS..]);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut s = self.state;
            for b in 0..BUF_BLOCKS {
                block_scalar(&s, &mut self.buf[b * BLOCK_WORDS..(b + 1) * BLOCK_WORDS]);
                advance_counter(&mut s, 1);
            }
        }
        advance_counter(&mut self.state, BUF_BLOCKS as u32);
        self.index = 0;
    }

    /// Returns the unread remainder of the buffered keystream, refilling
    /// first if it is exhausted; never empty. Reading `k` words from the
    /// front of this slice and then calling [`consume`](Self::consume)`(k)`
    /// is exactly equivalent to `k` calls to `next_u32`, but lets hot loops
    /// scan the keystream as a slice instead of paying the per-draw buffer
    /// bookkeeping.
    #[inline(always)]
    pub fn peek_words(&mut self) -> &[u32] {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        &self.buf[self.index..]
    }

    /// Marks the first `n` words of the last [`peek_words`](Self::peek_words)
    /// slice as read.
    #[inline(always)]
    pub fn consume(&mut self, n: usize) {
        debug_assert!(self.index + n <= BUF_WORDS);
        self.index += n;
    }

    /// Sets the 64-bit stream id (words 14..15), resetting the block buffer.
    pub fn set_stream(&mut self, stream: u64) {
        self.state[14] = stream as u32;
        self.state[15] = (stream >> 32) as u32;
        self.index = BUF_WORDS;
    }

    /// Returns the 64-bit block counter (advances `BUF_BLOCKS` per refill).
    pub fn get_word_pos(&self) -> u64 {
        (self.state[12] as u64) | ((self.state[13] as u64) << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and stream start at zero.
        Self {
            state,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline(always)]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // Mirror rand_core's BlockRng::next_u64 block-boundary behaviour.
        // With 16-word blocks that pairing is exactly "two consecutive words
        // of the keystream" (the low half of a straddling u64 is the last
        // word of one block, the high half the first word of the next), so a
        // multi-block buffer preserves the stream verbatim.
        if self.index < BUF_WORDS - 1 {
            let lo = self.buf[self.index] as u64;
            let hi = self.buf[self.index + 1] as u64;
            // On a fresh generator index == BUF_WORDS, handled below.
            self.index += 2;
            (hi << 32) | lo
        } else if self.index >= BUF_WORDS {
            self.refill();
            let lo = self.buf[0] as u64;
            let hi = self.buf[1] as u64;
            self.index = 2;
            (hi << 32) | lo
        } else {
            // Exactly one word left: it becomes the low half.
            let lo = self.buf[BUF_WORDS - 1] as u64;
            self.refill();
            let hi = self.buf[0] as u64;
            self.index = 1;
            (hi << 32) | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// RFC 7539 test vector structure, adapted to 8 rounds: the keystream
    /// must at minimum be deterministic, full-period within a block, and
    /// differ across seeds/streams.
    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..100).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..100).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(43);
            (0..100).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn quarter_round_matches_rfc8439() {
        // RFC 8439 §2.1.1 test vector for the ChaCha quarter round.
        let mut s = [0u32; BLOCK_WORDS];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mean: f64 = (0..4000).map(|_| r.gen::<f64>()).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_u64_boundary_is_consistent() {
        // Drawing 15 u32s then a u64 exercises a 16-word block boundary; the
        // straddling u64 must pair two consecutive keystream words.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..15 {
            a.next_u32();
        }
        let straddle = a.next_u64();
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_eq!(straddle, (words[15] as u64) | ((words[16] as u64) << 32));
    }

    #[test]
    fn next_u64_buffer_boundary_is_consistent() {
        // Same property at the refill boundary of the multi-block buffer.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..BUF_WORDS - 1 {
            a.next_u32();
        }
        let straddle = a.next_u64();
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..BUF_WORDS + 1).map(|_| b.next_u32()).collect();
        assert_eq!(
            straddle,
            (words[BUF_WORDS - 1] as u64) | ((words[BUF_WORDS] as u64) << 32)
        );
    }

    /// Every backend must produce the scalar core's keystream bit-for-bit;
    /// sampling determinism across machines depends on it.
    #[test]
    fn simd_backends_match_scalar_core() {
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        // Place the counter near u32 wrap to exercise the SIMD carry path.
        r.state[12] = u32::MAX - 3;
        let state = r.state;
        let stream: Vec<u32> = (0..BUF_WORDS).map(|_| r.next_u32()).collect();

        let mut expect = vec![0u32; BUF_WORDS];
        let mut s = state;
        for b in 0..BUF_BLOCKS {
            block_scalar(&s, &mut expect[b * BLOCK_WORDS..(b + 1) * BLOCK_WORDS]);
            advance_counter(&mut s, 1);
        }
        assert_eq!(stream, expect);

        #[cfg(target_arch = "x86_64")]
        {
            let mut out = vec![0u32; BUF_WORDS];
            let mut s = state;
            x86::blocks4_sse2(&s, &mut out[..4 * BLOCK_WORDS]);
            advance_counter(&mut s, 4);
            x86::blocks4_sse2(&s, &mut out[4 * BLOCK_WORDS..]);
            assert_eq!(out, expect, "sse2 backend diverges from scalar core");

            if std::arch::is_x86_feature_detected!("avx2") {
                let mut out = vec![0u32; BUF_WORDS];
                unsafe { x86::blocks8_avx2(&state, &mut out) };
                assert_eq!(out, expect, "avx2 backend diverges from scalar core");
            }
        }
    }

    #[test]
    fn set_stream_changes_and_resets_output() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let base: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.next_u32();
        b.set_stream(77);
        // set_stream resets the buffer but not the counter, so compare
        // against a fresh instance with the counter pre-advanced equally.
        let alt: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(base, alt);
    }
}
