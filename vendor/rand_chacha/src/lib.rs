//! Vendored, dependency-free ChaCha8 random number generator.
//!
//! Implements the genuine ChaCha stream cipher with 8 rounds, a 64-bit block
//! counter and a 64-bit stream id, producing the same u32/u64 output stream
//! as `rand_chacha::ChaCha8Rng` 0.3 (including the block-boundary behaviour
//! of `rand_core`'s `BlockRng` for `next_u64`).

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A cryptographically-derived (though here statistics-grade) RNG: ChaCha
/// with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The 16-word input block: constants, key, counter, stream.
    state: [u32; BLOCK_WORDS],
    /// Current output block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread index into `buf`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the next 64-byte block into `buf` and advances the counter.
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for i in 0..BLOCK_WORDS {
            self.buf[i] = w[i].wrapping_add(self.state[i]);
        }
        // 64-bit counter in words 12..13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }

    /// Sets the 64-bit stream id (words 14..15), resetting the block buffer.
    pub fn set_stream(&mut self, stream: u64) {
        self.state[14] = stream as u32;
        self.state[15] = (stream >> 32) as u32;
        self.index = BLOCK_WORDS;
    }

    /// Returns the 64-bit block counter.
    pub fn get_word_pos(&self) -> u64 {
        (self.state[12] as u64) | ((self.state[13] as u64) << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and stream start at zero.
        Self {
            state,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // Mirror rand_core's BlockRng::next_u64 block-boundary behaviour.
        if self.index < BLOCK_WORDS - 1 {
            let lo = self.buf[self.index] as u64;
            let hi = self.buf[self.index + 1] as u64;
            // On a fresh generator index == BLOCK_WORDS, handled below.
            self.index += 2;
            (hi << 32) | lo
        } else if self.index >= BLOCK_WORDS {
            self.refill();
            let lo = self.buf[0] as u64;
            let hi = self.buf[1] as u64;
            self.index = 2;
            (hi << 32) | lo
        } else {
            // Exactly one word left: it becomes the low half.
            let lo = self.buf[BLOCK_WORDS - 1] as u64;
            self.refill();
            let hi = self.buf[0] as u64;
            self.index = 1;
            (hi << 32) | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// RFC 7539 test vector structure, adapted to 8 rounds: the keystream
    /// must at minimum be deterministic, full-period within a block, and
    /// differ across seeds/streams.
    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..100).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..100).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(43);
            (0..100).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn quarter_round_matches_rfc8439() {
        // RFC 8439 §2.1.1 test vector for the ChaCha quarter round.
        let mut s = [0u32; BLOCK_WORDS];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mean: f64 = (0..4000).map(|_| r.gen::<f64>()).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_u64_boundary_is_consistent() {
        // Drawing 15 u32s then a u64 exercises the one-word-left path.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..15 {
            a.next_u32();
        }
        let straddle = a.next_u64();
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_eq!(straddle, (words[15] as u64) | ((words[16] as u64) << 32));
    }
}
