//! Vendored, dependency-free property-testing harness mirroring the subset
//! of the `proptest` API this workspace uses: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, integer-range / tuple / collection /
//! `any` strategies, `prop_map`, and a minimal string strategy.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test's module path and name), so failures are reproducible run-to-run.
//! Unlike upstream proptest there is no shrinking: a failing case reports
//! its inputs through the normal assertion message instead.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The names property tests want in scope.
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

/// Test-runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-case RNG (splitmix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test identity and case number — stable across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (which must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        let limit = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= limit {
                return v % bound;
            }
        }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Map adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    lo.wrapping_add(rng.next_u64() as $t)
                } else {
                    lo + rng.below(span) as $t
                }
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (self.start + f * (self.end - self.start)).min(self.end - f64::EPSILON)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let f = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        (self.start + f * (self.end - self.start)).min(self.end - f32::EPSILON)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// A minimal string strategy: a `&str` pattern of the form `.{lo,hi}`
/// (arbitrary characters, length in `lo..=hi`). Other patterns fall back to
/// arbitrary strings of up to 64 characters — enough for the
/// "never panics on arbitrary text" property this workspace uses.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 64));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                // Bias toward ASCII (incl. digits/whitespace, which tickle
                // parsers) but include some multibyte chars.
                match rng.below(8) {
                    0..=5 => (rng.below(0x5f) as u8 + 0x20) as char,
                    6 => ['\n', '\t', '\r', '0', '1', '9', ' ', '-'][rng.below(8) as usize],
                    _ => char::from_u32(rng.below(0xd7ff) as u32).unwrap_or('x'),
                }
            })
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// A strategy for any value of `A`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of `size.into()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s whose elements come from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `BTreeSet` built from `size.into()` draws (duplicates collapse, so
    /// the set may be smaller — same contract as upstream under a narrow
    /// element domain).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n {
                out.insert(self.element.generate(rng));
            }
            // A few extra attempts to approach the requested size.
            let mut attempts = 0;
            while out.len() < self.size.lo && attempts < 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Asserts inside a property (no shrinking; plain assert semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that draws its inputs from the strategies for each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with $cfg; $($rest)*);
    };
    (@with $cfg:expr;
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    { $body }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in 0usize..5, c in -4i32..4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((-4..4).contains(&c));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u64>(), 2..10),
            s in prop::collection::btree_set(0u32..1000, 0..8),
        ) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!(s.len() < 8);
        }

        #[test]
        fn tuples_and_map(x in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(x < 19);
        }

        #[test]
        fn string_pattern(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
