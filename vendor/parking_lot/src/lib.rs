//! Vendored shim mirroring the `parking_lot` lock API on top of `std::sync`.
//!
//! `parking_lot` locks don't poison; this shim recovers from poisoning to
//! match that contract.

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
