//! Vendored, dependency-free micro-benchmark harness mirroring the subset of
//! the `criterion` API this workspace's benches use.
//!
//! Statistical rigor is intentionally traded for hermeticity: each benchmark
//! runs a short warmup followed by `sample_size` timed iterations and prints
//! the mean time per iteration. Invoked without `--bench` (as `cargo test`
//! does for `harness = false` bench targets) it runs one iteration per
//! benchmark as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes --bench; plain execution (e.g. via
        // `cargo test`, which runs harness=false bench targets) smoke-tests
        // with a single iteration.
        let quick = !std::env::args().any(|a| a == "--bench");
        Self {
            sample_size: 10,
            quick,
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, self.sample_size, self.quick, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration workload size (accepted for API
    /// compatibility; throughput is not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.quick,
            &mut |b| f(b, input),
        );
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.quick,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Workload-size annotation.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    total: Duration,
}

impl Bencher {
    /// Times `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup (not timed).
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

fn run_one(label: &str, sample_size: usize, quick: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let iters = if quick { 1 } else { sample_size };
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.total.as_secs_f64() / iters as f64;
    if quick {
        println!("bench {label}: ok (smoke, {:.3} ms)", per_iter * 1e3);
    } else {
        println!(
            "bench {label}: {:.3} ms/iter over {iters} iters",
            per_iter * 1e3
        );
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
