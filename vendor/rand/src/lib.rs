//! Vendored, dependency-free reimplementation of the subset of the `rand`
//! 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! minimal local implementations of its third-party dependencies. This crate
//! keeps the exact trait shapes (`RngCore`, `Rng`, `SeedableRng`) and the
//! exact `seed_from_u64` expansion of `rand_core` 0.6 so that seeded streams
//! match the upstream crate bit-for-bit.

use std::ops::Range;

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from the half-open range `low..high`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T>(&mut self, range: Range<T>) -> T
    where
        T: SampleUniform,
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // Match rand 0.8: compare 64 fresh bits against p scaled to 2^64.
        // p == 1.0 must always return true.
        if p >= 1.0 {
            return true;
        }
        let scale = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < scale
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed. This reproduces the exact PCG32
    /// expansion of `rand_core` 0.6 so seeded streams match upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The standard distribution: full-range integers, unit-interval floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! standard_int {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 bits of precision in [0, 1), matching rand's Standard for f32.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 bits of precision in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + (uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                ((range.start as i64).wrapping_add(uniform_u64_below(rng, span) as i64)) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` via rejection sampling (no modulo bias).
/// `span == 0` means the full 64-bit range.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Largest multiple of span that fits in 2^64, minus one.
    let limit = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= limit {
            return v % span;
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        loop {
            let f: f32 = Standard.sample(rng);
            let v = range.start + f * (range.end - range.start);
            if v < range.end {
                return v;
            }
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        loop {
            let f: f64 = Standard.sample(rng);
            let v = range.start + f * (range.end - range.start);
            if v < range.end {
                return v;
            }
        }
    }
}

/// Compatibility module mirroring `rand::distributions`.
pub mod distributions {
    pub use super::{Distribution, Standard};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but fast mixer, good enough for range tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0 ^ (self.0 >> 31)
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
