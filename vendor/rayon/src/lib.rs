//! Vendored, dependency-free reimplementation of the subset of the `rayon`
//! API this workspace uses: indexed parallel iterators over ranges, slices
//! and vectors, with `map`/`filter`/`for_each`/`reduce`/`sum`/`collect`, and
//! a `ThreadPoolBuilder` whose `install` scopes a thread-count override.
//!
//! Execution model: each parallel call splits the index space into fixed
//! blocks, workers claim blocks through an atomic counter (cheap work
//! stealing), and block results are recombined **in index order**. Because
//! every combining operation the workspace uses is associative (sums, and
//! argmax under a total order), results are identical for any thread count —
//! the property `tests/determinism.rs` asserts.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! The traits most code wants in scope.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads for the current scope.
fn effective_threads() -> usize {
    POOL_OVERRIDE.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    })
}

/// Runs `fold_block` over fixed-size index blocks on a small worker crew and
/// returns the per-block results **ordered by block index**. This ordering is
/// what makes reductions deterministic under any scheduling.
fn run_blocks<A, F>(len: usize, fold_block: F) -> Vec<A>
where
    A: Send,
    F: Fn(usize, usize) -> A + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = effective_threads().min(len);
    if threads <= 1 {
        return vec![fold_block(0, len)];
    }
    // Enough blocks per thread to absorb skew, few enough to keep the
    // bookkeeping negligible.
    let block = len.div_ceil(threads * 8).max(1);
    let nblocks = len.div_ceil(block);
    let counter = AtomicUsize::new(0);
    let fold_block = &fold_block;
    let counter = &counter;
    let mut parts: Vec<(usize, A)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut mine: Vec<(usize, A)> = Vec::new();
                    loop {
                        let b = counter.fetch_add(1, Ordering::Relaxed);
                        if b >= nblocks {
                            break;
                        }
                        let start = b * block;
                        let end = (start + block).min(len);
                        mine.push((b, fold_block(start, end)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    });
    parts.sort_unstable_by_key(|p| p.0);
    parts.into_iter().map(|(_, a)| a).collect()
}

/// An indexed parallel iterator: a length plus a (filterable) item producer.
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item: Send;

    /// Number of index slots (an upper bound on produced items once filters
    /// are involved).
    fn par_len(&self) -> usize;

    /// Produces the item at slot `i`, or `None` if a filter rejected it.
    fn par_get(&self, i: usize) -> Option<Self::Item>;

    /// Maps each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Keeps only items for which `p` returns true.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, p }
    }

    /// Calls `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_blocks(self.par_len(), |s, e| {
            for i in s..e {
                if let Some(item) = self.par_get(i) {
                    f(item);
                }
            }
        });
    }

    /// Reduces all items with `op`, seeding each partial fold with
    /// `identity()`. `op` must be associative for the result to be
    /// deterministic (all uses in this workspace are).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let partials = run_blocks(self.par_len(), |s, e| {
            let mut acc = identity();
            for i in s..e {
                if let Some(item) = self.par_get(i) {
                    acc = op(acc, item);
                }
            }
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Sums all items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_blocks(self.par_len(), |s, e| {
            (s..e).filter_map(|i| self.par_get(i)).sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Counts the items that survive filtering.
    fn count(self) -> usize {
        run_blocks(self.par_len(), |s, e| {
            (s..e).filter(|&i| self.par_get(i).is_some()).count()
        })
        .into_iter()
        .sum()
    }

    /// Collects all items, in index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        let parts = run_blocks(self.par_len(), |s, e| {
            let mut out = Vec::with_capacity(e - s);
            for i in s..e {
                if let Some(item) = self.par_get(i) {
                    out.push(item);
                }
            }
            out
        });
        let mut all = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            all.extend(p);
        }
        C::from_ordered_vec(all)
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from items already in index order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

/// Map adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_get(&self, i: usize) -> Option<R> {
        self.base.par_get(i).map(&self.f)
    }
}

/// Filter adapter.
pub struct Filter<I, P> {
    base: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Sync,
{
    type Item = I::Item;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_get(&self, i: usize) -> Option<I::Item> {
        self.base.par_get(i).filter(|x| (self.p)(x))
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator over an integer range.
#[derive(Clone, Copy)]
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! range_impl {
    ($($t:ty),* $(,)?) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn par_len(&self) -> usize {
                self.len
            }
            fn par_get(&self, i: usize) -> Option<$t> {
                Some(self.start + i as $t)
            }
        }
    )*};
}
range_impl!(u32, u64, usize);

impl IntoParallelIterator for std::ops::Range<i32> {
    type Iter = RangeIter<i32>;
    type Item = i32;
    fn into_par_iter(self) -> RangeIter<i32> {
        let len = if self.end > self.start {
            (self.end as i64 - self.start as i64) as usize
        } else {
            0
        };
        RangeIter {
            start: self.start,
            len,
        }
    }
}

impl ParallelIterator for RangeIter<i32> {
    type Item = i32;
    fn par_len(&self) -> usize {
        self.len
    }
    fn par_get(&self, i: usize) -> Option<i32> {
        Some(self.start + i as i32)
    }
}

/// A parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn par_get(&self, i: usize) -> Option<&'a T> {
        Some(&self.slice[i])
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter {
            items: self.into_iter().map(ItemSlot::new).collect(),
        }
    }
}

/// A parallel iterator that takes ownership of a `Vec`, handing each element
/// out exactly once.
pub struct VecIter<T> {
    items: Vec<ItemSlot<T>>,
}

struct ItemSlot<T>(std::sync::Mutex<Option<T>>);

impl<T> ItemSlot<T> {
    fn new(v: T) -> Self {
        Self(std::sync::Mutex::new(Some(v)))
    }
    fn take(&self) -> Option<T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn par_get(&self, i: usize) -> Option<T> {
        self.items[i].take()
    }
}

/// `.par_iter()` on shared collections.
pub trait IntoParallelRefIterator<'data> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a shared reference).
    type Item: Send + 'data;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

/// `.par_iter_mut()` on mutable collections: runs the closure over disjoint
/// chunks; only `for_each` is supported on the result.
pub trait IntoParallelRefMutIterator<'data> {
    /// The resulting iterator.
    type Iter;
    /// The element type (a mutable reference).
    type Item: 'data;
    /// Mutably borrows `self`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = SliceIterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> SliceIterMut<'data, T> {
        SliceIterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = SliceIterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> SliceIterMut<'data, T> {
        SliceIterMut { slice: self }
    }
}

/// A mutable parallel "iterator" supporting `for_each`.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> SliceIterMut<'a, T> {
    /// Applies `f` to every element in parallel over disjoint chunks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let threads = effective_threads().min(self.slice.len().max(1));
        if threads <= 1 {
            for item in self.slice {
                f(item);
            }
            return;
        }
        let chunk = self.slice.len().div_ceil(threads);
        std::thread::scope(|s| {
            for part in self.slice.chunks_mut(chunk) {
                let f = &f;
                s.spawn(move || {
                    for item in part {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` — the only knob supported is
/// the thread count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`] (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (0 means the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes parallel calls to a fixed thread count.
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect for parallel calls
    /// made on the current thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = POOL_OVERRIDE.with(|c| c.replace(self.num_threads));
        let guard = RestoreOverride(prev);
        let result = op();
        drop(guard);
        result
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(effective_threads)
    }
}

struct RestoreOverride(Option<usize>);

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        POOL_OVERRIDE.with(|c| c.set(self.0));
    }
}

/// Returns the number of threads parallel calls will use here.
pub fn current_num_threads() -> usize {
    effective_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn filter_then_map() {
        let v: Vec<u64> = (0u64..1000)
            .into_par_iter()
            .filter(|x| x % 3 == 0)
            .map(|x| x + 1)
            .collect();
        let expect: Vec<u64> = (0u64..1000).filter(|x| x % 3 == 0).map(|x| x + 1).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn reduce_argmax_deterministic_across_thread_counts() {
        let data: Vec<u32> = (0..5000u32)
            .map(|i| i.wrapping_mul(2654435761) % 997)
            .collect();
        let run = || {
            data.par_iter()
                .map(|&c| c)
                .collect::<Vec<u32>>()
                .into_par_iter()
                .map(|c| (c, 0usize))
                .reduce(|| (0, usize::MAX), |a, b| if b.0 > a.0 { b } else { a })
        };
        let base = run();
        for n in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            assert_eq!(pool.install(run), base);
        }
    }

    #[test]
    fn sum_and_count() {
        let s: usize = (0usize..1001).into_par_iter().sum();
        assert_eq!(s, 1000 * 1001 / 2);
        let c = (0u64..1000).into_par_iter().filter(|x| x % 2 == 0).count();
        assert_eq!(c, 500);
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v = vec![String::from("a"), String::from("b"), String::from("c")];
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, vec!["a!", "b!", "c!"]);
    }

    #[test]
    fn for_each_runs_every_index() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0usize..4096).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<u64> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x *= 3);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 3 * i as u64));
    }
}
